// Package task defines the shared contracts between datasets,
// classifiers, and the evaluation harness: a Task is a labelled text
// classification problem with named classes; a Classifier maps text
// to a Prediction; a Trainable classifier additionally learns from
// labelled examples.
package task

import (
	"errors"
	"fmt"
	"math/rand"
)

// Example is one labelled text instance. Label indexes the owning
// Task's LabelNames.
type Example struct {
	Text  string
	Label int
}

// Task is a single-label text-classification problem with fixed
// train/test splits.
type Task struct {
	Name        string   // e.g. "rsdd-sim/depression-binary"
	Description string   // one-line human description
	LabelNames  []string // class names; Example.Label indexes this
	Train       []Example
	Test        []Example
}

// NumClasses returns the number of classes.
func (t *Task) NumClasses() int { return len(t.LabelNames) }

// Validate checks internal consistency: non-empty label set, every
// example label within range, and non-empty test split.
func (t *Task) Validate() error {
	if t.Name == "" {
		return errors.New("task: empty name")
	}
	if len(t.LabelNames) < 2 {
		return fmt.Errorf("task %s: need >= 2 classes, have %d", t.Name, len(t.LabelNames))
	}
	if len(t.Test) == 0 {
		return fmt.Errorf("task %s: empty test split", t.Name)
	}
	check := func(split string, exs []Example) error {
		for i, ex := range exs {
			if ex.Label < 0 || ex.Label >= len(t.LabelNames) {
				return fmt.Errorf("task %s: %s[%d] label %d out of range [0,%d)",
					t.Name, split, i, ex.Label, len(t.LabelNames))
			}
		}
		return nil
	}
	if err := check("train", t.Train); err != nil {
		return err
	}
	return check("test", t.Test)
}

// ClassCounts returns per-class example counts for the given split.
func ClassCounts(exs []Example, numClasses int) []int {
	counts := make([]int, numClasses)
	for _, ex := range exs {
		if ex.Label >= 0 && ex.Label < numClasses {
			counts[ex.Label]++
		}
	}
	return counts
}

// Subsample returns a deterministic stratified subsample of at most n
// examples, preserving class proportions as closely as possible. If
// n >= len(exs) it returns a shuffled copy of exs.
func Subsample(exs []Example, n int, seed int64) []Example {
	rng := rand.New(rand.NewSource(seed))
	shuffled := make([]Example, len(exs))
	copy(shuffled, exs)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	if n >= len(shuffled) {
		return shuffled
	}
	// Greedy stratified pick: walk the shuffle, capping each class at
	// ceil(n * classShare) until n examples are selected.
	total := len(exs)
	maxClass := map[int]int{}
	counts := map[int]int{}
	for _, ex := range exs {
		counts[ex.Label]++
	}
	for label, c := range counts {
		maxClass[label] = (n*c + total - 1) / total
	}
	taken := map[int]int{}
	out := make([]Example, 0, n)
	for _, ex := range shuffled {
		if len(out) == n {
			break
		}
		if taken[ex.Label] < maxClass[ex.Label] {
			taken[ex.Label]++
			out = append(out, ex)
		}
	}
	// Fill any remainder (rounding slack) from the front.
	for _, ex := range shuffled {
		if len(out) == n {
			break
		}
		if !containsIdentical(out, ex) {
			out = append(out, ex)
		}
	}
	return out
}

func containsIdentical(exs []Example, e Example) bool {
	for _, x := range exs {
		if x == e {
			return true
		}
	}
	return false
}

// Prediction is a classifier's output for one input.
type Prediction struct {
	Label  int       // predicted class index; -1 if parsing failed
	Scores []float64 // optional per-class scores/probabilities
	Raw    string    // optional raw model output (LLM completions)
}

// Classifier maps text to a prediction. Implementations must be safe
// for concurrent Predict calls after construction/training.
type Classifier interface {
	Name() string
	Predict(text string) (Prediction, error)
}

// Trainable is a classifier that learns from labelled examples.
// Fit must be called before Predict.
type Trainable interface {
	Classifier
	Fit(train []Example) error
}

// Scratch is opaque per-worker state owned by a BatchPredictor.
// Obtain one from NewScratch, keep it private to a single worker
// (it is not safe for concurrent use), and reuse it across calls so
// the steady state allocates nothing.
type Scratch any

// BatchPredictor is a Classifier with a tokenize-once fast path:
// callers that already hold a post's normalized word tokens — the
// detector computes them once and feeds the same slice to both the
// classifier and the lexicon automaton — skip re-normalizing and
// re-tokenizing the text inside Predict.
//
// Contract:
//
//   - toks must equal textkit.Words(textkit.Normalize(text)) for the
//     post being classified; PredictTokens must then return exactly
//     the Prediction that Predict(text) would (identical Label and
//     bit-identical Scores — the fuzz parity tests pin this).
//   - PredictTokens must not mutate toks, and may retain token
//     aliases only inside sc's reusable buffers, where they live
//     until a later call overwrites them — the same bounded
//     aliasing textkit's append tokenizers already have. Callers
//     whose post texts must not outlive the call should not share
//     the scratch beyond it.
//   - sc must come from NewScratch on the same predictor, or be nil
//     (nil falls back to temporary state and loses the zero-allocation
//     property, not correctness).
//   - The returned Prediction's Scores may alias sc and are only
//     valid until sc's next use; callers that keep them must copy.
type BatchPredictor interface {
	Classifier
	// NewScratch allocates predictor-specific per-worker scratch.
	NewScratch() Scratch
	// PredictTokens is Predict over pre-computed normalized word
	// tokens.
	PredictTokens(toks []string, sc Scratch) (Prediction, error)
	// PredictTokensBatch is the batch-major kernel: it scores a
	// micro-batch of token slices (each element under the same
	// contract as PredictTokens's toks) in one sweep and returns one
	// Prediction per post, index-aligned with batch.
	//
	// Contract, in addition to PredictTokens's:
	//
	//   - PredictTokensBatch(batch, sc)[i] must be bit-identical to
	//     PredictTokens(batch[i], sc) for every i — batching is a
	//     memory-layout optimization, never a semantic one. The
	//     race-mode property tests pin this.
	//   - The returned slice and every Prediction's Scores may alias
	//     sc; all of them remain valid together until sc's next use,
	//     so callers may consume the whole batch before copying.
	PredictTokensBatch(batch [][]string, sc Scratch) ([]Prediction, error)
}
