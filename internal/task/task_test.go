package task

import (
	"testing"
)

func mkTask() *Task {
	return &Task{
		Name:       "toy",
		LabelNames: []string{"neg", "pos"},
		Train:      []Example{{"a", 0}, {"b", 1}},
		Test:       []Example{{"c", 0}, {"d", 1}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := mkTask().Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []func(*Task){
		func(tk *Task) { tk.Name = "" },
		func(tk *Task) { tk.LabelNames = []string{"only"} },
		func(tk *Task) { tk.Test = nil },
		func(tk *Task) { tk.Train[0].Label = 7 },
		func(tk *Task) { tk.Test[1].Label = -1 },
	}
	for i, mut := range cases {
		tk := mkTask()
		mut(tk)
		if err := tk.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestClassCounts(t *testing.T) {
	exs := []Example{{"", 0}, {"", 1}, {"", 1}, {"", 0}, {"", 1}}
	got := ClassCounts(exs, 2)
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("ClassCounts = %v", got)
	}
	// Out-of-range labels are ignored, not panicking.
	got = ClassCounts([]Example{{"", 9}}, 2)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("out-of-range labels counted: %v", got)
	}
}

func TestSubsampleDeterministic(t *testing.T) {
	exs := make([]Example, 100)
	for i := range exs {
		exs[i] = Example{Text: string(rune('a' + i%26)), Label: i % 2}
	}
	a := Subsample(exs, 20, 42)
	b := Subsample(exs, 20, 42)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("subsample not deterministic")
		}
	}
	c := Subsample(exs, 20, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should usually differ")
	}
}

func TestSubsamplePreservesProportions(t *testing.T) {
	// 80/20 imbalance must survive subsampling approximately.
	exs := make([]Example, 200)
	for i := range exs {
		label := 0
		if i < 40 {
			label = 1
		}
		exs[i] = Example{Text: "x", Label: label}
	}
	sub := Subsample(exs, 50, 7)
	counts := ClassCounts(sub, 2)
	if counts[1] < 5 || counts[1] > 15 {
		t.Errorf("minority class count %d drifted from ~10", counts[1])
	}
	if counts[0]+counts[1] != 50 {
		t.Errorf("total %d != 50", counts[0]+counts[1])
	}
}

func TestSubsampleNBiggerThanData(t *testing.T) {
	exs := []Example{{"a", 0}, {"b", 1}}
	got := Subsample(exs, 10, 1)
	if len(got) != 2 {
		t.Errorf("len = %d, want 2", len(got))
	}
}

func TestSubsampleDoesNotMutateInput(t *testing.T) {
	exs := []Example{{"a", 0}, {"b", 1}, {"c", 0}, {"d", 1}}
	orig := make([]Example, len(exs))
	copy(orig, exs)
	Subsample(exs, 2, 9)
	for i := range exs {
		if exs[i] != orig[i] {
			t.Fatal("Subsample mutated its input")
		}
	}
}
