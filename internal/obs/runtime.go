package obs

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
)

// RuntimeStats is a point-in-time snapshot of Go runtime health,
// shaped for the mh_* runtime series on /metrics. ReadRuntimeStats
// stops the world briefly (runtime.ReadMemStats), so callers sample
// it at scrape time, not per request.
type RuntimeStats struct {
	Goroutines          int
	GOMAXPROCS          int
	HeapAllocBytes      uint64
	HeapInuseBytes      uint64
	HeapSysBytes        uint64
	StackInuseBytes     uint64
	GCCycles            uint32
	GCPauseTotalSeconds float64
	// GCPauseP50Seconds / GCPauseP99Seconds are quantiles over the
	// runtime's circular buffer of recent GC pauses (up to the last
	// 256 cycles); zero before the first collection.
	GCPauseP50Seconds float64
	GCPauseP99Seconds float64
}

// ReadRuntimeStats samples the runtime.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs := RuntimeStats{
		Goroutines:          runtime.NumGoroutine(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapInuseBytes:      ms.HeapInuse,
		HeapSysBytes:        ms.HeapSys,
		StackInuseBytes:     ms.StackInuse,
		GCCycles:            ms.NumGC,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
	}
	n := int(ms.NumGC)
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	if n > 0 {
		pauses := make([]float64, n)
		for i := 0; i < n; i++ {
			pauses[i] = float64(ms.PauseNs[i]) / 1e9
		}
		sort.Float64s(pauses)
		rs.GCPauseP50Seconds = quantileSorted(pauses, 0.5)
		rs.GCPauseP99Seconds = quantileSorted(pauses, 0.99)
	}
	return rs
}

// quantileSorted returns the q-th quantile of a sorted sample by the
// nearest-rank method.
func quantileSorted(sorted []float64, q float64) float64 {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Build identifies the running binary: module path and version, Go
// toolchain, and VCS revision when the binary was built from a
// checkout. Fields degrade to placeholders ("(devel)", "unknown")
// rather than empties so label values and -version output are always
// printable.
type Build struct {
	Path      string
	Version   string
	GoVersion string
	Revision  string
	Modified  bool // VCS checkout had local modifications
}

// ReadBuild reads the binary's build info via
// runtime/debug.ReadBuildInfo.
func ReadBuild() Build {
	b := Build{Path: "unknown", Version: "(devel)", GoVersion: runtime.Version(), Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Path != "" {
		b.Path = bi.Main.Path
	}
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		b.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if s.Value != "" {
				b.Revision = s.Value
			}
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// String renders the one-line form the CLIs' -version flag prints.
func (b Build) String() string {
	rev := b.Revision
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (%s, revision %s)", b.Path, b.Version, b.GoVersion, rev)
}
