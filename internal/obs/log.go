package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level in the lowercase form log lines carry.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf(`obs: unknown log level %q (want debug, info, warn, or error)`, s)
}

// Field is one structured key/value pair on a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger writes leveled JSON-lines logs: one object per line with
// "ts", "level", and "msg" plus the line's fields. Safe for
// concurrent use (lines are written atomically under one writer
// lock); every method is safe and free on a nil receiver, so wiring
// no logger disables logging outright.
type Logger struct {
	mu    *sync.Mutex // shared with With-derived children: one writer lock
	w     io.Writer
	level Level
	base  []Field
	now   func() time.Time // test hook
}

// NewLogger builds a logger emitting lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, now: time.Now}
}

// With returns a child logger whose lines all carry fields.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.base = append(append([]Field(nil), l.base...), fields...)
	return &child
}

// Enabled reports whether lines at lv would be written.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.level }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at info level.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at error level.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

func (l *Logger) log(lv Level, msg string, fields []Field) {
	if !l.Enabled(lv) {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":"`...)
	buf = l.now().UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, `","level":"`...)
	buf = append(buf, lv.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSONString(buf, msg)
	for _, f := range l.base {
		buf = appendField(buf, f)
	}
	for _, f := range fields {
		buf = appendField(buf, f)
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

// appendField renders ,"key":value with a JSON encoding per dynamic
// type. Durations render as float seconds so log lines stay
// machine-comparable with the *_seconds metrics.
func appendField(buf []byte, f Field) []byte {
	buf = append(buf, ',')
	buf = appendJSONString(buf, f.Key)
	buf = append(buf, ':')
	switch v := f.Value.(type) {
	case nil:
		return append(buf, "null"...)
	case string:
		return appendJSONString(buf, v)
	case bool:
		return strconv.AppendBool(buf, v)
	case int:
		return strconv.AppendInt(buf, int64(v), 10)
	case int64:
		return strconv.AppendInt(buf, v, 10)
	case uint64:
		return strconv.AppendUint(buf, v, 10)
	case float64:
		return appendJSONFloat(buf, v)
	case time.Duration:
		return appendJSONFloat(buf, v.Seconds())
	case time.Time:
		buf = append(buf, '"')
		buf = v.UTC().AppendFormat(buf, time.RFC3339Nano)
		return append(buf, '"')
	case error:
		if v == nil {
			return append(buf, "null"...)
		}
		return appendJSONString(buf, v.Error())
	case fmt.Stringer:
		if v == nil {
			return append(buf, "null"...)
		}
		return appendJSONString(buf, v.String())
	default:
		return appendJSONString(buf, fmt.Sprintf("%v", v))
	}
}

// appendJSONFloat renders a float, quoting the values JSON numbers
// cannot carry.
func appendJSONFloat(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		buf = append(buf, '"')
		buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
		return append(buf, '"')
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

const hexDigits = "0123456789abcdef"

// appendJSONString renders a JSON string literal. UTF-8 passes
// through unescaped; control characters, quotes, and backslashes are
// escaped per RFC 8259.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// RateLimiter is a token bucket bounding noisy log paths (the
// slow-request log): Allow refills at the configured rate up to the
// burst and reports whether one event may proceed. Safe for
// concurrent use; a nil limiter allows everything.
type RateLimiter struct {
	mu         sync.Mutex
	rate       float64 // tokens per second
	burst      float64
	tokens     float64
	last       time.Time
	now        func() time.Time // test hook
	suppressed atomic.Int64
}

// NewRateLimiter builds a limiter refilling perSec tokens per second
// with the given burst capacity (both clamped to at least 1 event).
func NewRateLimiter(perSec float64, burst int) *RateLimiter {
	if perSec <= 0 {
		perSec = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{rate: perSec, burst: float64(burst), tokens: float64(burst), now: time.Now}
}

// Allow consumes one token, reporting whether the event may proceed.
func (r *RateLimiter) Allow() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	if !r.last.IsZero() {
		r.tokens += now.Sub(r.last).Seconds() * r.rate
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
	}
	r.last = now
	if r.tokens < 1 {
		r.suppressed.Add(1)
		return false
	}
	r.tokens--
	return true
}

// Suppressed returns how many events Allow has rejected.
func (r *RateLimiter) Suppressed() int64 {
	if r == nil {
		return 0
	}
	return r.suppressed.Load()
}
