package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentTracesDoNotInterleave is the -race property test for
// the tracer: many goroutines complete traces concurrently — each
// with concurrently-ending child spans — and every retained trace
// must contain exactly its own spans (every span name carries its
// trace's identity, so a single foreign span proves interleaving),
// while both retention rings hold their capacity bound under the
// storm.
func TestConcurrentTracesDoNotInterleave(t *testing.T) {
	const (
		goroutines     = 8
		tracesPerG     = 50
		childrenPerTr  = 6
		ringCap        = 16
		expectedTraces = goroutines * tracesPerG
	)
	tr := NewTracer(Config{
		SampleN:       1,
		SlowThreshold: time.Nanosecond, // every trace competes for the slow ring
		Ring:          ringCap,
		OnSpanEnd:     func(string, time.Duration) {}, // exercise the hook under race too
	})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < tracesPerG; i++ {
				ident := fmt.Sprintf("g%d.t%d", g, i)
				root := tr.Root("request:"+ident, Traceparent{})
				if root == nil {
					t.Errorf("SampleN=1 returned a nil root")
					return
				}
				// End half the children from separate goroutines so
				// span completion races within one trace as it does
				// when a coalesced batch delivers on worker goroutines.
				var cwg sync.WaitGroup
				for c := 0; c < childrenPerTr; c++ {
					child := root.Child("stage:" + ident + ":" + strconv.Itoa(c))
					if c%2 == 0 {
						cwg.Add(1)
						go func() {
							defer cwg.Done()
							child.End()
						}()
					} else {
						child.End()
					}
				}
				cwg.Wait()
				root.End()
			}
		}(g)
	}
	wg.Wait()

	recent, slow := tr.Snapshot()
	if len(recent) > ringCap || len(slow) > ringCap {
		t.Fatalf("ring bound violated under storm: %d recent / %d slow, cap %d",
			len(recent), len(slow), ringCap)
	}
	if len(recent) != ringCap || len(slow) != ringCap {
		t.Fatalf("rings not full after %d traces: %d recent / %d slow",
			expectedTraces, len(recent), len(slow))
	}
	for _, trace := range append(append([]*Trace(nil), recent...), slow...) {
		ident := strings.TrimPrefix(trace.Name, "request:")
		if len(trace.Spans) != childrenPerTr+1 {
			t.Errorf("trace %s has %d spans, want %d", ident, len(trace.Spans), childrenPerTr+1)
		}
		seen := map[string]bool{}
		for _, sp := range trace.Spans {
			if seen[sp.Name] {
				t.Errorf("trace %s retains duplicate span %s", ident, sp.Name)
			}
			seen[sp.Name] = true
			if sp.Name == trace.Name {
				continue // the root itself
			}
			if !strings.HasPrefix(sp.Name, "stage:"+ident+":") {
				t.Errorf("trace %s retains foreign span %s — spans interleaved across traces",
					ident, sp.Name)
			}
		}
	}
}
