package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanRecord is one completed span as retained and served on
// /debug/traces.
type SpanRecord struct {
	Name            string       `json:"name"`
	SpanID          string       `json:"span_id"`
	ParentID        string       `json:"parent_id,omitempty"`
	Start           time.Time    `json:"start"`
	DurationSeconds float64      `json:"duration_seconds"`
	Annotations     []Annotation `json:"annotations,omitempty"`
}

// Trace is one completed, sealed trace: the root's identity and
// timing plus every span that ended before the seal, in start order.
type Trace struct {
	TraceID         string       `json:"trace_id"`
	Name            string       `json:"name"` // root span name (the endpoint)
	Start           time.Time    `json:"start"`
	DurationSeconds float64      `json:"duration_seconds"`
	Slow            bool         `json:"slow"`
	Spans           []SpanRecord `json:"spans"`
}

// Sink is the tail-based retention store: a ring of the most recent N
// completed traces plus the slowest N traces over the tracer's
// latency threshold. Completed traces are immutable, so the lock only
// guards pointer-slot bookkeeping — adding a trace is a few pointer
// writes (plus, for slow traces with a full slow ring, one linear
// min-scan over at most N entries).
type Sink struct {
	mu      sync.Mutex
	capEach int
	recent  []*Trace // ring; next indexes the oldest slot once full
	next    int
	slow    []*Trace // slowest-N over threshold, unordered
}

// NewSink builds a sink retaining at most capEach traces per ring.
func NewSink(capEach int) *Sink {
	if capEach <= 0 {
		capEach = 64
	}
	return &Sink{capEach: capEach}
}

// Add retains one completed trace; slow traces additionally compete
// for the slowest-N ring (evicting the fastest retained slow trace
// when full).
func (s *Sink) Add(t *Trace, slow bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.recent) < s.capEach {
		s.recent = append(s.recent, t)
	} else {
		s.recent[s.next] = t
		s.next = (s.next + 1) % s.capEach
	}
	if !slow {
		return
	}
	if len(s.slow) < s.capEach {
		s.slow = append(s.slow, t)
		return
	}
	fastest := 0
	for i, o := range s.slow {
		if o.DurationSeconds < s.slow[fastest].DurationSeconds {
			fastest = i
		}
	}
	if t.DurationSeconds > s.slow[fastest].DurationSeconds {
		s.slow[fastest] = t
	}
}

// Snapshot copies out the retained traces: recent newest-first, slow
// by descending duration.
func (s *Sink) Snapshot() (recent, slow []*Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.recent)
	recent = make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		recent = append(recent, s.recent[((s.next-1-i)%n+n)%n])
	}
	slow = append([]*Trace(nil), s.slow...)
	sort.SliceStable(slow, func(i, j int) bool {
		return slow[i].DurationSeconds > slow[j].DurationSeconds
	})
	return recent, slow
}
