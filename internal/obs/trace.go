// Package obs is the serving stack's dependency-free observability
// layer: request tracing (parent/child spans with W3C traceparent
// propagation and tail-based retention), leveled structured JSON
// logging correlated by trace ID, and runtime telemetry snapshots for
// /metrics.
//
// The tracing API is built so the disabled path costs nothing: every
// method is safe on a nil *Tracer and nil *Span and does no work and
// no allocation there, so instrumented hot paths (the detector's
// zero-allocation screen fast path, the coalescer) pay only a nil
// check when tracing is off or a request was not sampled.
//
// Sampling is head-based — a new root is recorded for 1 in every
// Config.SampleN arrivals — with two always-keep escape hatches:
// requests carrying a sampled W3C traceparent header are always
// recorded (so a caller can force a trace end-to-end), and completed
// traces at or above Config.SlowThreshold are retained in a dedicated
// slowest-N ring regardless of when they were sampled (tail-based
// retention of exactly the traces worth debugging).
package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier, rendered as 32 lowercase hex
// digits (the W3C trace-id field).
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a 64-bit span identifier, rendered as 16 lowercase hex
// digits (the W3C parent-id field).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Traceparent is a parsed W3C traceparent header. The zero value
// means "no usable upstream context".
type Traceparent struct {
	Trace   TraceID
	Span    SpanID // upstream parent span
	Sampled bool
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). Any
// malformed, all-zero, or future-version-invalid header yields the
// zero Traceparent — propagation is best-effort, never an error the
// request should see.
func ParseTraceparent(h string) Traceparent {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return Traceparent{}
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(h[0:2])); err != nil || version[0] == 0xff {
		return Traceparent{}
	}
	var tp Traceparent
	if _, err := hex.Decode(tp.Trace[:], []byte(h[3:35])); err != nil || tp.Trace.IsZero() {
		return Traceparent{}
	}
	if _, err := hex.Decode(tp.Span[:], []byte(h[36:52])); err != nil || tp.Span.IsZero() {
		return Traceparent{}
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return Traceparent{}
	}
	tp.Sampled = flags[0]&0x01 != 0
	return tp
}

// FormatTraceparent renders a version-00 traceparent header for
// emission to the client / downstream services.
func FormatTraceparent(trace TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + trace.String() + "-" + span.String() + "-" + flags
}

// Config tunes a Tracer.
type Config struct {
	// SampleN head-samples 1 in every SampleN new roots (1 records
	// every request; 0 or negative records none — only requests that
	// arrive with a sampled traceparent header are then traced).
	SampleN int
	// SlowThreshold marks a completed trace slow: it is retained in
	// the slowest-N ring and reported to OnSlow (default 250ms).
	SlowThreshold time.Duration
	// Ring is the capacity of each retention ring — most-recent and
	// slowest — so at most 2*Ring completed traces are held
	// (default 64).
	Ring int
	// OnSpanEnd, when set, observes every completed non-root span with
	// its name and duration — the hook that derives the per-stage
	// latency histograms from the same spans /debug/traces serves, so
	// metrics and traces cannot disagree. Called synchronously on the
	// instrumented goroutine; must be cheap and safe for concurrent
	// use.
	OnSpanEnd func(name string, d time.Duration)
	// OnSlow, when set, is called with each completed slow trace
	// (after it is retained). Callers rate-limit inside the hook.
	OnSlow func(t *Trace)
}

func (c Config) withDefaults() Config {
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	if c.Ring <= 0 {
		c.Ring = 64
	}
	return c
}

// Tracer samples and records request traces. Construct with
// NewTracer; all methods are safe for concurrent use and safe (and
// free) on a nil receiver.
type Tracer struct {
	cfg      Config
	seed     uint64
	ids      atomic.Uint64 // ID-generation counter
	arrivals atomic.Uint64 // head-sampling counter
	sink     *Sink
}

// NewTracer builds a tracer over its two retention rings.
func NewTracer(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{
		cfg:  cfg,
		seed: uint64(time.Now().UnixNano()),
		sink: NewSink(cfg.Ring),
	}
}

// splitmix64 is the SplitMix64 output function: a cheap, well-mixed
// bijection good enough for non-adversarial ID generation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (tr *Tracer) nextID() uint64 {
	return splitmix64(tr.seed + tr.ids.Add(1)*0x9e3779b97f4a7c15)
}

func (tr *Tracer) newTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], tr.nextID())
	binary.BigEndian.PutUint64(t[8:], tr.nextID())
	if t.IsZero() { // all-zero is invalid per the W3C spec
		t[15] = 1
	}
	return t
}

func (tr *Tracer) newSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], tr.nextID())
	if s.IsZero() {
		s[7] = 1
	}
	return s
}

// Root starts a root span for one request, applying the sampling
// policy: a sampled upstream traceparent always records (continuing
// the upstream trace ID), otherwise the head sampler records 1 in
// SampleN arrivals. Returns nil — a free no-op span — when the
// request is not sampled or the tracer itself is nil.
func (tr *Tracer) Root(name string, tp Traceparent) *Span {
	if tr == nil {
		return nil
	}
	record := tp.Sampled
	if !record {
		record = tr.cfg.SampleN > 0 && (tr.arrivals.Add(1)-1)%uint64(tr.cfg.SampleN) == 0
	}
	if !record {
		return nil
	}
	trace := tp.Trace
	if trace.IsZero() {
		trace = tr.newTraceID()
	}
	return &Span{
		tracer: tr,
		rec:    &traceRec{},
		trace:  trace,
		id:     tr.newSpanID(),
		parent: tp.Span,
		name:   name,
		start:  time.Now(),
		root:   true,
	}
}

// Snapshot returns the retained traces: recent is the most-recent
// ring newest-first, slow is the slowest-over-threshold ring ordered
// by descending duration. Nil-safe.
func (tr *Tracer) Snapshot() (recent, slow []*Trace) {
	if tr == nil {
		return nil, nil
	}
	return tr.sink.Snapshot()
}

// traceRec accumulates the completed spans of one sampled trace. The
// root span's End seals it; spans ending after the seal (a waiter
// that gave up while its batch kept computing) are dropped rather
// than racing the retained snapshot.
type traceRec struct {
	mu     sync.Mutex
	spans  []SpanRecord
	sealed bool
}

// Span is one timed operation within a trace. A nil *Span is a valid,
// free no-op — every method nil-checks — which is how unsampled
// requests and disabled tracing stay zero-allocation. A span's
// non-End methods must be called from one goroutine at a time; End
// must be called exactly once (later calls no-op).
type Span struct {
	tracer *Tracer
	rec    *traceRec
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	root   bool
	ended  bool
	annots []Annotation
}

// Annotation is one key/value note attached to a span.
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID returns the span's own ID (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Child starts a child span. Nil-safe: a nil parent yields a nil
// child for free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer,
		rec:    s.rec,
		trace:  s.trace,
		id:     s.tracer.newSpanID(),
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
}

// Annotate attaches a key/value note to the span. Call before End.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.annots = append(s.annots, Annotation{Key: key, Value: value})
}

// End completes the span, feeding OnSpanEnd (non-root spans) and —
// for the root — sealing the trace and handing it to the retention
// rings and the slow-trace hook.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start)
	tr := s.tracer
	if !s.root && tr.cfg.OnSpanEnd != nil {
		tr.cfg.OnSpanEnd(s.name, d)
	}
	rec := SpanRecord{
		Name:            s.name,
		SpanID:          s.id.String(),
		Start:           s.start,
		DurationSeconds: d.Seconds(),
		Annotations:     s.annots,
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	if !s.root {
		s.rec.mu.Lock()
		if !s.rec.sealed {
			s.rec.spans = append(s.rec.spans, rec)
		}
		s.rec.mu.Unlock()
		return
	}
	s.rec.mu.Lock()
	s.rec.spans = append(s.rec.spans, rec)
	s.rec.sealed = true
	spans := s.rec.spans
	s.rec.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	t := &Trace{
		TraceID:         s.trace.String(),
		Name:            s.name,
		Start:           s.start,
		DurationSeconds: d.Seconds(),
		Slow:            d >= tr.cfg.SlowThreshold,
		Spans:           spans,
	}
	tr.sink.Add(t, t.Slow)
	if t.Slow && tr.cfg.OnSlow != nil {
		tr.cfg.OnSlow(t)
	}
}

type ctxKey int

const (
	spanKey ctxKey = iota
	batchKey
)

// NewContext returns ctx carrying s. A nil span returns ctx unchanged
// (no allocation), so untraced requests pay nothing.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// SpanSet is a batch's per-item parent spans, index-aligned with the
// batch items. Entries may be nil (untraced items); a nil or short
// set yields nil for every index.
type SpanSet []*Span

// At returns the span for item i, nil-safe on any index.
func (ss SpanSet) At(i int) *Span {
	if i < 0 || i >= len(ss) {
		return nil
	}
	return ss[i]
}

// NewBatchContext returns ctx carrying the batch's span set — how the
// coalescer hands each waiter's request span through a batch API that
// executes under its own base context. An empty set returns ctx
// unchanged.
func NewBatchContext(ctx context.Context, ss SpanSet) context.Context {
	if len(ss) == 0 {
		return ctx
	}
	return context.WithValue(ctx, batchKey, ss)
}

// BatchFromContext returns the span set carried by ctx, or nil.
func BatchFromContext(ctx context.Context) SpanSet {
	ss, _ := ctx.Value(batchKey).(SpanSet)
	return ss
}
