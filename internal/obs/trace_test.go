package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tp := ParseTraceparent(valid)
	if !tp.Sampled {
		t.Fatalf("valid sampled header parsed as %+v", tp)
	}
	if got := tp.Trace.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", got)
	}
	if got := tp.Span.String(); got != "00f067aa0ba902b7" {
		t.Errorf("span id = %s", got)
	}

	unsampled := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if unsampled.Sampled || unsampled.Trace.IsZero() {
		t.Errorf("unsampled header: got %+v, want valid ids with Sampled=false", unsampled)
	}

	invalid := []string{
		"",
		"not a header",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",  // bad flags
		"00-XYZ92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-012", // bad length
	}
	for _, h := range invalid {
		if got := ParseTraceparent(h); got != (Traceparent{}) {
			t.Errorf("ParseTraceparent(%q) = %+v, want zero", h, got)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(Config{SampleN: 1})
	sp := tr.Root("request", Traceparent{})
	h := FormatTraceparent(sp.TraceID(), sp.SpanID(), true)
	tp := ParseTraceparent(h)
	if !tp.Sampled || tp.Trace != sp.TraceID() || tp.Span != sp.SpanID() {
		t.Fatalf("round trip %q -> %+v", h, tp)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := NewTracer(Config{SampleN: 4})
	sampled := 0
	for i := 0; i < 16; i++ {
		if sp := tr.Root("r", Traceparent{}); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 4 {
		t.Errorf("1-in-4 sampling over 16 arrivals recorded %d traces, want 4", sampled)
	}

	// SampleN <= 0: only a sampled traceparent forces recording.
	off := NewTracer(Config{SampleN: 0})
	for i := 0; i < 8; i++ {
		if sp := off.Root("r", Traceparent{}); sp != nil {
			t.Fatal("SampleN=0 recorded a head-sampled trace")
		}
	}
	forced := off.Root("r", ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"))
	if forced == nil {
		t.Fatal("sampled traceparent did not force recording")
	}
	if got := forced.TraceID().String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("forced trace did not keep the upstream trace id: %s", got)
	}
	forced.End()
}

func TestSpanTreeAndRetention(t *testing.T) {
	var stages []string
	tr := NewTracer(Config{
		SampleN:       1,
		SlowThreshold: time.Nanosecond, // everything is slow
		OnSpanEnd:     func(name string, d time.Duration) { stages = append(stages, name) },
	})
	root := tr.Root("request", Traceparent{})
	a := root.Child("admission")
	a.End()
	s := root.Child("screen")
	h := s.Child("harden")
	h.Annotate("rewrites", "3")
	h.End()
	s.End()
	root.End()

	recent, slow := tr.Snapshot()
	if len(recent) != 1 || len(slow) != 1 {
		t.Fatalf("retained %d recent / %d slow, want 1/1", len(recent), len(slow))
	}
	trace := recent[0]
	if !trace.Slow {
		t.Error("trace not marked slow")
	}
	if len(trace.Spans) != 4 {
		t.Fatalf("trace has %d spans, want 4: %+v", len(trace.Spans), trace.Spans)
	}
	byName := map[string]SpanRecord{}
	for _, sr := range trace.Spans {
		byName[sr.Name] = sr
	}
	if byName["admission"].ParentID != byName["request"].SpanID {
		t.Error("admission is not a child of request")
	}
	if byName["harden"].ParentID != byName["screen"].SpanID {
		t.Error("harden is not a child of screen")
	}
	if got := byName["harden"].Annotations; len(got) != 1 || got[0] != (Annotation{"rewrites", "3"}) {
		t.Errorf("harden annotations = %+v", got)
	}
	// OnSpanEnd sees every non-root span, never the root (request
	// latency already has its own histogram).
	if got := strings.Join(stages, ","); got != "admission,harden,screen" {
		t.Errorf("OnSpanEnd saw %q, want admission,harden,screen", got)
	}
}

func TestLateSpanAfterSealDropped(t *testing.T) {
	tr := NewTracer(Config{SampleN: 1, SlowThreshold: time.Hour})
	root := tr.Root("request", Traceparent{})
	straggler := root.Child("screen")
	root.End() // waiter gave up; batch still computing
	straggler.End()
	recent, _ := tr.Snapshot()
	if len(recent) != 1 {
		t.Fatalf("retained %d traces, want 1", len(recent))
	}
	if n := len(recent[0].Spans); n != 1 {
		t.Errorf("sealed trace has %d spans, want only the root", n)
	}
}

func TestSinkRetention(t *testing.T) {
	sk := NewSink(3)
	mk := func(id string, dur float64) *Trace {
		return &Trace{TraceID: id, DurationSeconds: dur}
	}
	sk.Add(mk("a", 1), true)
	sk.Add(mk("b", 5), true)
	sk.Add(mk("c", 2), true)
	sk.Add(mk("d", 4), true)  // evicts a (fastest slow)
	sk.Add(mk("e", 0), false) // recent only
	recent, slow := sk.Snapshot()
	gotRecent := make([]string, 0, len(recent))
	for _, t := range recent {
		gotRecent = append(gotRecent, t.TraceID)
	}
	if strings.Join(gotRecent, "") != "edc" {
		t.Errorf("recent (newest first) = %v, want [e d c]", gotRecent)
	}
	gotSlow := make([]string, 0, len(slow))
	for _, t := range slow {
		gotSlow = append(gotSlow, t.TraceID)
	}
	if strings.Join(gotSlow, "") != "bdc" {
		t.Errorf("slow (slowest first) = %v, want [b d c]", gotSlow)
	}
}

func TestOnSlowHook(t *testing.T) {
	var slow []*Trace
	tr := NewTracer(Config{SampleN: 1, SlowThreshold: time.Nanosecond,
		OnSlow: func(t *Trace) { slow = append(slow, t) }})
	tr.Root("request", Traceparent{}).End()
	if len(slow) != 1 || slow[0].Name != "request" {
		t.Fatalf("OnSlow saw %+v, want the one slow trace", slow)
	}

	var fast []*Trace
	tr2 := NewTracer(Config{SampleN: 1, SlowThreshold: time.Hour,
		OnSlow: func(t *Trace) { fast = append(fast, t) }})
	tr2.Root("request", Traceparent{}).End()
	if len(fast) != 0 {
		t.Fatalf("OnSlow fired for a fast trace")
	}
}

// TestNilSafety drives the whole span surface through nil receivers —
// the disabled-tracing path — and asserts it allocates nothing.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Root("request", Traceparent{})
		ctx := NewContext(context.Background(), sp)
		got := FromContext(ctx)
		child := got.Child("stage")
		child.Annotate("k", "v")
		grand := child.Child("deeper")
		grand.End()
		child.End()
		_ = sp.TraceID()
		_ = sp.SpanID()
		sp.End()
		var ss SpanSet
		_ = ss.At(0).Child("x")
		_ = BatchFromContext(NewBatchContext(ctx, nil))
	})
	if allocs != 0 {
		t.Errorf("disabled tracing path allocates %g/op, want 0", allocs)
	}
	recent, slow := tr.Snapshot()
	if recent != nil || slow != nil {
		t.Error("nil tracer snapshot not empty")
	}
}

func TestSpanSetAt(t *testing.T) {
	tr := NewTracer(Config{SampleN: 1})
	sp := tr.Root("request", Traceparent{})
	ss := SpanSet{sp, nil}
	if ss.At(0) != sp || ss.At(1) != nil || ss.At(2) != nil || ss.At(-1) != nil {
		t.Error("SpanSet.At index handling wrong")
	}
	ctx := NewBatchContext(context.Background(), ss)
	if got := BatchFromContext(ctx); got.At(0) != sp {
		t.Error("batch context round trip lost the span set")
	}
	sp.End()
}

func TestDoubleEndIsIdempotent(t *testing.T) {
	tr := NewTracer(Config{SampleN: 1})
	root := tr.Root("request", Traceparent{})
	root.End()
	root.End()
	recent, _ := tr.Snapshot()
	if len(recent) != 1 {
		t.Fatalf("double End retained %d traces, want 1", len(recent))
	}
}
