package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeLines decodes each JSON log line into a map.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not valid JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.now = func() time.Time { return time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC) }
	l.Info("listening",
		F("addr", ":8080"),
		F("inflight", 256),
		F("ratio", 0.75),
		F("delay", 2*time.Millisecond),
		F("ok", true),
		F("err", errors.New("boom")),
		F("nan", math.NaN()),
		F("quote", `a "b" \c`+"\n\x01"),
	)
	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	m := lines[0]
	if m["ts"] != "2026-08-07T12:00:00Z" || m["level"] != "info" || m["msg"] != "listening" {
		t.Errorf("envelope = %v", m)
	}
	if m["addr"] != ":8080" || m["inflight"] != float64(256) || m["ratio"] != 0.75 ||
		m["delay"] != 0.002 || m["ok"] != true || m["err"] != "boom" {
		t.Errorf("fields = %v", m)
	}
	if m["nan"] != "NaN" {
		t.Errorf("NaN rendered as %v, want the quoted string", m["nan"])
	}
	if m["quote"] != `a "b" \c`+"\n\x01" {
		t.Errorf("escaping round trip failed: %q", m["quote"])
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := decodeLines(t, &buf)
	if len(lines) != 2 || lines[0]["level"] != "warn" || lines[1]["level"] != "error" {
		t.Fatalf("LevelWarn logger emitted %v", lines)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).With(F("component", "mhserve"))
	l.Info("hello", F("x", 1))
	lines := decodeLines(t, &buf)
	if lines[0]["component"] != "mhserve" || lines[0]["x"] != float64(1) {
		t.Fatalf("With fields missing: %v", lines[0])
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing happens")
	l.With(F("a", 1)).Error("still nothing")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
}

func TestLoggerConcurrentLinesAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("line", F("g", g), F("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := decodeLines(t, &buf)
	if len(lines) != 400 {
		t.Fatalf("got %d intact lines, want 400", len(lines))
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestRateLimiter(t *testing.T) {
	r := NewRateLimiter(1, 2)
	now := time.Unix(0, 0)
	r.now = func() time.Time { return now }
	if !r.Allow() || !r.Allow() {
		t.Fatal("burst of 2 not allowed")
	}
	if r.Allow() {
		t.Fatal("third immediate event allowed past the burst")
	}
	now = now.Add(1500 * time.Millisecond) // refills 1.5 tokens
	if !r.Allow() {
		t.Fatal("refilled token not allowed")
	}
	if r.Allow() {
		t.Fatal("half a token allowed")
	}
	if r.Suppressed() != 2 {
		t.Errorf("Suppressed = %d, want 2", r.Suppressed())
	}
	var nilLim *RateLimiter
	if !nilLim.Allow() || nilLim.Suppressed() != 0 {
		t.Error("nil limiter must allow everything")
	}
}

func TestRuntimeStatsAndBuild(t *testing.T) {
	rs := ReadRuntimeStats()
	if rs.Goroutines < 1 || rs.GOMAXPROCS < 1 || rs.HeapAllocBytes == 0 {
		t.Errorf("implausible runtime stats: %+v", rs)
	}
	b := ReadBuild()
	if b.GoVersion == "" || b.Version == "" || b.Revision == "" || b.Path == "" {
		t.Errorf("build info has empty fields: %+v", b)
	}
	if s := b.String(); !strings.Contains(s, b.GoVersion) {
		t.Errorf("Build.String() = %q missing go version", s)
	}
	if got := quantileSorted([]float64{1, 2, 3, 4}, 0.5); got != 2 {
		t.Errorf("quantileSorted p50 of 1..4 = %g, want 2", got)
	}
	if got := quantileSorted([]float64{7}, 0.99); got != 7 {
		t.Errorf("quantileSorted single sample = %g, want 7", got)
	}
}
