// Package core is the survey's primary contribution rebuilt as a
// library: a unified benchmark that runs every detection method over
// every dataset under one evaluation protocol and regenerates each
// table and figure of the paper's evaluation section.
package core

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment result: a titled grid of cells.
// Figures are represented as tables of their plotted series (x
// column + one column per series), which is the form the benchmark
// can assert on and a plotting tool can consume.
type Table struct {
	ID     string // experiment id, e.g. "table2" or "fig1"
	Title  string
	Header []string
	Rows   [][]string
	Notes  string // provenance / caveats, rendered under the table
}

// AddRow appends a row (padded or truncated to the header width).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	if len(t.Header) == 0 {
		return b.String()
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n_%s_\n", t.Notes)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes cells containing
// commas, quotes, or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Cell returns the cell at (row, col), or "" when out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}

// FindRow returns the index of the first row whose first cell equals
// name, or -1.
func (t *Table) FindRow(name string) int {
	for i, row := range t.Rows {
		if len(row) > 0 && row[0] == name {
			return i
		}
	}
	return -1
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
