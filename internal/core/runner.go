package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/task"
)

// Env carries the run-wide knobs every experiment receives.
type Env struct {
	// Seed drives dataset splits, training, and LLM sampling.
	Seed int64
	// Quick shrinks datasets so the whole suite runs in seconds
	// (used by tests and benchmarks); full runs use the registry
	// sizes.
	Quick bool
	// Parallelism bounds concurrent (dataset, method) cells;
	// 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultEnv returns the standard full-run environment.
func DefaultEnv() *Env { return &Env{Seed: 2025} }

func (e *Env) parallelism() int {
	if e.Parallelism > 0 {
		return e.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// trainCap / testCap bound split sizes (0 = unlimited).
func (e *Env) trainCap() int {
	if e.Quick {
		return 300
	}
	return 2400
}

func (e *Env) testCap() int {
	if e.Quick {
		return 120
	}
	return 500
}

// buildTask materializes a registry dataset into a task with
// env-sized splits.
func (e *Env) buildTask(dataset string) (*task.Task, error) {
	spec, err := corpus.Lookup(dataset)
	if err != nil {
		return nil, err
	}
	if e.Quick {
		spec.N = 700
	}
	ds, err := spec.Build()
	if err != nil {
		return nil, err
	}
	tk, err := ds.Task(0.8, e.Seed)
	if err != nil {
		return nil, err
	}
	e.capTask(tk)
	return tk, nil
}

func (e *Env) capTask(tk *task.Task) {
	if c := e.trainCap(); c > 0 && len(tk.Train) > c {
		tk.Train = task.Subsample(tk.Train, c, e.Seed+1)
	}
	if c := e.testCap(); c > 0 && len(tk.Test) > c {
		tk.Test = task.Subsample(tk.Test, c, e.Seed+2)
	}
}

// cell is one (dataset, method) evaluation result.
type cell struct {
	dataset string
	method  string
	res     *eval.Result
	err     error
}

// runGrid evaluates every method on every task concurrently (bounded
// by env parallelism) and returns results keyed by dataset then
// method. Any cell error fails the grid.
func runGrid(env *Env, tasks map[string]*task.Task, methods []MethodSpec) (map[string]map[string]*eval.Result, error) {
	type job struct {
		dataset string
		tk      *task.Task
		m       MethodSpec
	}
	var jobs []job
	for name, tk := range tasks {
		for _, m := range methods {
			jobs = append(jobs, job{dataset: name, tk: tk, m: m})
		}
	}
	results := make(chan cell, len(jobs))
	sem := make(chan struct{}, env.parallelism())
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cell{dataset: j.dataset, method: j.m.Name}
			clf, err := j.m.Build(j.tk, env.Seed)
			if err != nil {
				c.err = fmt.Errorf("build %s on %s: %w", j.m.Name, j.dataset, err)
				results <- c
				return
			}
			res, err := eval.Evaluate(clf, j.tk)
			if err != nil {
				c.err = fmt.Errorf("evaluate %s on %s: %w", j.m.Name, j.dataset, err)
				results <- c
				return
			}
			c.res = res
			results <- c
		}(j)
	}
	wg.Wait()
	close(results)

	out := make(map[string]map[string]*eval.Result, len(tasks))
	for c := range results {
		if c.err != nil {
			return nil, c.err
		}
		if out[c.dataset] == nil {
			out[c.dataset] = make(map[string]*eval.Result)
		}
		out[c.dataset][c.method] = c.res
	}
	return out, nil
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string // "table1".."table7", "fig1".."fig6"
	Title string
	Kind  string // "table" or "figure"
	Run   func(env *Env) (*Table, error)
}

// Suite returns every experiment in paper order: the reconstructed
// tables and figures first, then the extension experiments (early
// detection and ablations).
func Suite() []*Experiment {
	return []*Experiment{
		table1(), table2(), table3(), table4(), table5(), table6(), table7(),
		fig1(), fig2(), fig3(), fig4(), fig5(), fig6(),
		ext1(), ext2(), ext3(), ext4(), ext5(),
	}
}

// LookupExperiment finds an experiment by id.
func LookupExperiment(id string) (*Experiment, error) {
	for _, e := range Suite() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Suite()))
	for _, e := range Suite() {
		ids = append(ids, e.ID)
	}
	return nil, fmt.Errorf("core: unknown experiment %q (have %v)", id, ids)
}
