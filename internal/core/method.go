package core

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/llm"
	"repro/internal/prompting"
	"repro/internal/task"
)

// MethodSpec is one detection method in the benchmark: a display
// name plus a builder that constructs and fits a classifier for a
// concrete task. Builders must be deterministic under the provided
// seed.
type MethodSpec struct {
	Name string
	// Kind is "baseline" or "prompting"; the cost experiment treats
	// the two differently.
	Kind string
	// Build constructs the classifier and fits it on tk.Train.
	Build func(tk *task.Task, seed int64) (task.Classifier, error)
}

// fitted fits a trainable on the task's training split and returns it.
func fitted(clf task.Trainable, tk *task.Task) (task.Classifier, error) {
	if err := clf.Fit(tk.Train); err != nil {
		return nil, err
	}
	return clf, nil
}

// BaselineMethods returns the non-LLM methods of the benchmark in
// report order.
func BaselineMethods() []MethodSpec {
	return []MethodSpec{
		{Name: "majority", Kind: "baseline",
			Build: func(tk *task.Task, _ int64) (task.Classifier, error) {
				return fitted(baseline.NewMajority(tk.NumClasses()), tk)
			}},
		{Name: "lexicon-features", Kind: "baseline",
			Build: func(tk *task.Task, _ int64) (task.Classifier, error) {
				return fitted(baseline.NewLexiconFeatures(tk.NumClasses(), nil), tk)
			}},
		{Name: "naive-bayes", Kind: "baseline",
			Build: func(tk *task.Task, _ int64) (task.Classifier, error) {
				return fitted(baseline.NewNaiveBayes(tk.NumClasses(), 1.0), tk)
			}},
		{Name: "logistic-regression", Kind: "baseline",
			Build: func(tk *task.Task, seed int64) (task.Classifier, error) {
				return fitted(baseline.NewLogisticRegression(tk.NumClasses(),
					baseline.LRConfig{Seed: seed}), tk)
			}},
		{Name: "linear-svm", Kind: "baseline",
			Build: func(tk *task.Task, seed int64) (task.Classifier, error) {
				return fitted(baseline.NewLinearSVM(tk.NumClasses(),
					baseline.SVMConfig{Seed: seed}), tk)
			}},
		{Name: "finetuned-encoder", Kind: "baseline",
			Build: func(tk *task.Task, seed int64) (task.Classifier, error) {
				return fitted(baseline.NewFineTunedEncoder(tk.NumClasses(),
					baseline.EncoderConfig{Seed: seed}), tk)
			}},
	}
}

// PromptMethod builds a prompting MethodSpec for a model and config.
// description frames the task inside the prompt.
func PromptMethod(model string, description string, cfg prompting.Config) MethodSpec {
	name := model + "/" + cfg.Strategy.String()
	if cfg.Strategy == prompting.FewShot || cfg.Strategy == prompting.FewShotCoT {
		k := cfg.K
		if k == 0 {
			k = 5
		}
		name = fmt.Sprintf("%s-%d", name, k)
		if cfg.Selector != nil && cfg.Selector.Name() != "random" {
			name += "-" + cfg.Selector.Name()
		}
	}
	return MethodSpec{
		Name: name,
		Kind: "prompting",
		Build: func(tk *task.Task, seed int64) (task.Classifier, error) {
			card, err := llm.LookupModel(model)
			if err != nil {
				return nil, err
			}
			client, err := llm.NewSimClient(card)
			if err != nil {
				return nil, err
			}
			c := cfg
			c.Seed = seed
			clf, err := prompting.New(client, description, tk.LabelNames, c)
			if err != nil {
				return nil, err
			}
			return fitted(clf, tk)
		},
	}
}

// StandardMethods is the default method set of the headline tables:
// all baselines plus the surveyed prompting configurations.
func StandardMethods(description string) []MethodSpec {
	methods := BaselineMethods()
	methods = append(methods,
		PromptMethod("llama2-13b-sim", description, prompting.Config{Strategy: prompting.ZeroShot}),
		PromptMethod("gpt-3.5-sim", description, prompting.Config{Strategy: prompting.ZeroShot}),
		PromptMethod("gpt-3.5-sim", description, prompting.Config{Strategy: prompting.FewShot, K: 5}),
		PromptMethod("gpt-4-sim", description, prompting.Config{Strategy: prompting.ZeroShot}),
		PromptMethod("gpt-4-sim", description, prompting.Config{Strategy: prompting.ChainOfThought}),
	)
	return methods
}
