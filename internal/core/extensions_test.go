package core

import (
	"strconv"
	"strings"
	"testing"
)

func TestExt1EarlyDetectionBeatsFloor(t *testing.T) {
	tb, err := ext1().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Never-alarm floor is the positive rate (~0.2); trained monitors
	// must beat it on ERDE_50 where latency matters less.
	lr := parseF(t, tb, tb.FindRow("logistic-regression monitor"), 2)
	if lr >= 0.2 {
		t.Errorf("LR monitor ERDE_50 = %.3f should beat the ~0.2 never-alarm floor", lr)
	}
	// Recall column sanity.
	rec := parseF(t, tb, tb.FindRow("logistic-regression monitor"), 4)
	if rec < 0.5 {
		t.Errorf("LR monitor recall = %.3f implausibly low", rec)
	}
}

func TestExt2ParserRobustnessShape(t *testing.T) {
	tb, err := ext2().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// For the small model, robust+retry must fail to parse strictly
	// fewer completions than strict no-retry, and accuracy must
	// improve (every recovered answer beats a forced abstention).
	var strictAcc, robustAcc float64
	var strictFail, robustFail int
	for _, row := range tb.Rows {
		if row[0] != "llama2-7b-sim" {
			continue
		}
		acc, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		fails, err := strconv.Atoi(strings.SplitN(row[4], "/", 2)[0])
		if err != nil {
			t.Fatal(err)
		}
		switch row[1] {
		case "strict, no retry":
			strictAcc, strictFail = acc, fails
		case "robust + retry":
			robustAcc, robustFail = acc, fails
		}
	}
	if robustFail >= strictFail {
		t.Errorf("robust+retry failures (%d) must be below strict no-retry (%d)", robustFail, strictFail)
	}
	if robustAcc <= strictAcc {
		t.Errorf("robust+retry accuracy (%.3f) must beat strict no-retry (%.3f)", robustAcc, strictAcc)
	}
}

func TestExt4AgreementShape(t *testing.T) {
	tb, err := ext4().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Agreement and downstream model quality must both fall as
	// annotator noise rises.
	kFirst := parseF(t, tb, 0, 1)
	kLast := parseF(t, tb, len(tb.Rows)-1, 1)
	if kFirst <= kLast {
		t.Errorf("kappa should fall with noise: %.3f -> %.3f", kFirst, kLast)
	}
	f1First := parseF(t, tb, 0, 4)
	f1Last := parseF(t, tb, len(tb.Rows)-1, 4)
	if f1First <= f1Last {
		t.Errorf("downstream F1 should fall with noise: %.3f -> %.3f", f1First, f1Last)
	}
	// Kappa and alpha must roughly agree.
	aFirst := parseF(t, tb, 0, 2)
	if kFirst-aFirst > 0.1 || aFirst-kFirst > 0.1 {
		t.Errorf("kappa %.3f vs alpha %.3f diverge", kFirst, aFirst)
	}
}

func TestExt5SignificanceMatrix(t *testing.T) {
	tb, err := ext5().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Diagonal is "-", matrix is symmetric, p-values in (0,1].
	for i := range tb.Rows {
		if tb.Cell(i, i+1) != "-" {
			t.Errorf("diagonal (%d) = %q", i, tb.Cell(i, i+1))
		}
		for j := range tb.Rows {
			if i == j {
				continue
			}
			pij := tb.Cell(i, j+1)
			pji := tb.Cell(j, i+1)
			if pij != pji {
				t.Errorf("matrix not symmetric at (%d,%d): %s vs %s", i, j, pij, pji)
			}
			v, err := strconv.ParseFloat(pij, 64)
			if err != nil || v <= 0 || v > 1 {
				t.Errorf("p-value (%d,%d) = %q invalid", i, j, pij)
			}
		}
	}
}

func TestExt3ExemplarBalanceShape(t *testing.T) {
	tb, err := ext3().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	balanced := parseF(t, tb, tb.FindRow("class-balanced"), 1)
	onesided := parseF(t, tb, tb.FindRow("positives only"), 1)
	if balanced < onesided-0.02 {
		t.Errorf("balanced exemplars (%.3f) should not trail one-sided (%.3f)", balanced, onesided)
	}
}
