package core

import (
	"fmt"
	"sort"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/prompting"
	"repro/internal/task"
)

// All experiments are *reconstructed* from the survey's title and the
// canonical public literature it must cover; see DESIGN.md. The
// Notes field of every table records that provenance.

const reconNote = "Reconstructed experiment on synthetic datasets; compare shapes (orderings, gaps, crossovers), not absolute values."

// depressionDescription frames the depression tasks inside prompts.
const depressionDescription = "signs of depression in the author"

// ---- table1: dataset statistics ----

func table1() *Experiment {
	return &Experiment{
		ID: "table1", Title: "Benchmark dataset statistics", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			t := &Table{
				ID: "table1", Title: "Benchmark dataset statistics",
				Header: []string{"dataset", "posts", "classes", "class counts", "imbalance", "mean tokens", "description"},
				Notes:  reconNote,
			}
			for _, spec := range corpus.Registry() {
				if env.Quick {
					spec.N = 400
				}
				ds, err := spec.Build()
				if err != nil {
					return nil, err
				}
				st := ds.Stats()
				t.AddRow(st.Name,
					fmt.Sprintf("%d", st.N),
					fmt.Sprintf("%d", st.NumClasses),
					fmt.Sprintf("%v", st.ClassCounts),
					fmt.Sprintf("%.1f", st.Imbalance),
					fmt.Sprintf("%.1f", st.MeanTokens),
					spec.Description)
			}
			return t, nil
		},
	}
}

// ---- tables 2-5: the headline method x dataset comparisons ----

// methodGrid renders a grid table: one row per method, one metric
// column group per dataset.
func methodGrid(env *Env, id, title string, datasets []string, description string,
	metric func(*eval.Result) []string, metricCols []string) (*Table, error) {

	tasks := make(map[string]*task.Task, len(datasets))
	for _, d := range datasets {
		tk, err := env.buildTask(d)
		if err != nil {
			return nil, err
		}
		tasks[d] = tk
	}
	methods := StandardMethods(description)
	grid, err := runGrid(env, tasks, methods)
	if err != nil {
		return nil, err
	}
	header := []string{"method"}
	for _, d := range datasets {
		for _, c := range metricCols {
			header = append(header, d+" "+c)
		}
	}
	t := &Table{ID: id, Title: title, Header: header, Notes: reconNote}
	for _, m := range methods {
		row := []string{m.Name}
		for _, d := range datasets {
			row = append(row, metric(grid[d][m.Name])...)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func table2() *Experiment {
	return &Experiment{
		ID: "table2", Title: "Binary depression detection", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			return methodGrid(env, "table2", "Binary depression detection (F1 of the depression class / accuracy)",
				[]string{"rsdd-sim", "erisk-sim"}, depressionDescription,
				func(r *eval.Result) []string {
					return []string{f3(r.PositiveF1), f3(r.Accuracy)}
				},
				[]string{"F1+", "acc"})
		},
	}
}

func table3() *Experiment {
	return &Experiment{
		ID: "table3", Title: "Multi-disorder classification", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			return methodGrid(env, "table3", "Multi-disorder classification on smhd-sim (macro-F1 / accuracy)",
				[]string{"smhd-sim"}, "which mental health condition, if any, the author shows signs of",
				func(r *eval.Result) []string {
					return []string{f3(r.MacroF1), f3(r.Accuracy)}
				},
				[]string{"macro-F1", "acc"})
		},
	}
}

func table4() *Experiment {
	return &Experiment{
		ID: "table4", Title: "Suicide-risk severity grading", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			return methodGrid(env, "table4", "Suicide-risk severity on clpsych-sim (weighted-F1 / ordinal MAE, lower MAE better)",
				[]string{"clpsych-sim"}, "the level of suicide risk expressed by the author",
				func(r *eval.Result) []string {
					return []string{f3(r.WeightedF1), f3(r.OrdinalMAE)}
				},
				[]string{"weighted-F1", "MAE"})
		},
	}
}

func table5() *Experiment {
	return &Experiment{
		ID: "table5", Title: "Stress detection", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			return methodGrid(env, "table5", "Stress detection on dreaddit-sim (F1 of the stress class / AUROC where scores exist)",
				[]string{"dreaddit-sim"}, "whether the author is experiencing psychological stress",
				func(r *eval.Result) []string {
					auc := "-"
					if r.AUROC > 0 {
						auc = f3(r.AUROC)
					}
					return []string{f3(r.PositiveF1), auc}
				},
				[]string{"F1+", "AUROC"})
		},
	}
}

// ---- table6: prompt-strategy ablation ----

func table6() *Experiment {
	return &Experiment{
		ID: "table6", Title: "Prompt-strategy ablation", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			configs := []prompting.Config{
				{Strategy: prompting.ZeroShot},
				{Strategy: prompting.EmotionEnhanced},
				{Strategy: prompting.ChainOfThought},
				{Strategy: prompting.SelfConsistency, Samples: 5},
				{Strategy: prompting.FewShot, K: 1},
				{Strategy: prompting.FewShot, K: 3},
				{Strategy: prompting.FewShot, K: 5},
				{Strategy: prompting.FewShot, K: 10},
				{Strategy: prompting.FewShotCoT, K: 5},
			}
			var methods []MethodSpec
			for _, cfg := range configs {
				methods = append(methods, PromptMethod("gpt-3.5-sim", depressionDescription, cfg))
			}
			grid, err := runGrid(env, map[string]*task.Task{"rsdd-sim": tk}, methods)
			if err != nil {
				return nil, err
			}
			t := &Table{
				ID: "table6", Title: "Prompt-strategy ablation (gpt-3.5-sim on rsdd-sim)",
				Header: []string{"strategy", "macro-F1", "accuracy", "parse failures"},
				Notes:  reconNote,
			}
			for _, m := range methods {
				r := grid["rsdd-sim"][m.Name]
				t.AddRow(m.Name, f3(r.MacroF1), f3(r.Accuracy),
					fmt.Sprintf("%d/%d", r.Unparsed, r.N))
			}
			return t, nil
		},
	}
}

// ---- table7: token / latency / cost accounting ----

func table7() *Experiment {
	return &Experiment{
		ID: "table7", Title: "Inference cost per method", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			n := len(tk.Test)
			if n > 100 {
				tk.Test = tk.Test[:100]
				n = 100
			}
			type entry struct {
				model string
				cfg   prompting.Config
			}
			entries := []entry{
				{"gpt-3.5-sim", prompting.Config{Strategy: prompting.ZeroShot}},
				{"gpt-3.5-sim", prompting.Config{Strategy: prompting.FewShot, K: 5}},
				{"gpt-3.5-sim", prompting.Config{Strategy: prompting.FewShot, K: 10}},
				{"gpt-3.5-sim", prompting.Config{Strategy: prompting.ChainOfThought}},
				{"gpt-3.5-sim", prompting.Config{Strategy: prompting.SelfConsistency, Samples: 5}},
				{"gpt-4-sim", prompting.Config{Strategy: prompting.ZeroShot}},
				{"gpt-4-sim", prompting.Config{Strategy: prompting.ChainOfThought}},
			}
			t := &Table{
				ID: "table7", Title: fmt.Sprintf("Per-method inference cost over %d posts (simulated pricing)", n),
				Header: []string{"method", "tokens in", "tokens out", "cost USD", "sim latency", "USD / 1k posts"},
				Notes:  reconNote + " Latency and pricing are simulated model-card constants; only ratios are meaningful.",
			}
			for _, e := range entries {
				client, err := llm.NewSimClient(llm.MustModel(e.model))
				if err != nil {
					return nil, err
				}
				cfg := e.cfg
				cfg.Seed = env.Seed
				clf, err := prompting.New(client, depressionDescription, tk.LabelNames, cfg)
				if err != nil {
					return nil, err
				}
				if err := clf.Fit(tk.Train); err != nil {
					return nil, err
				}
				if _, err := eval.Evaluate(clf, tk); err != nil {
					return nil, err
				}
				u := client.Usage()
				t.AddRow(clf.Name(),
					fmt.Sprintf("%d", u.TokensIn),
					fmt.Sprintf("%d", u.TokensOut),
					fmt.Sprintf("%.4f", u.CostUSD),
					u.SimLatency.Round(1e8).String(),
					fmt.Sprintf("%.2f", u.CostUSD/float64(n)*1000))
			}
			return t, nil
		},
	}
}

// ---- fig1: F1 vs model scale (emergence) ----

func fig1() *Experiment {
	return &Experiment{
		ID: "fig1", Title: "F1 vs model scale (zero-shot and CoT)", Kind: "figure",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			params := []float64{0.5, 1, 3, 7, 13, 30, 70, 175, 350, 1000}
			if env.Quick {
				params = []float64{1, 13, 70, 1000}
			}
			t := &Table{
				ID: "fig1", Title: "Macro-F1 vs parameters (B), rsdd-sim",
				Header: []string{"params (B)", "zero-shot macro-F1", "cot macro-F1"},
				Notes:  reconNote + " CoT hurts small models and crosses above zero-shot only at large scale (emergence).",
			}
			for _, card := range llm.ScaleSweep(params) {
				row := []string{fmt.Sprintf("%g", card.Params)}
				for _, strat := range []prompting.Strategy{prompting.ZeroShot, prompting.ChainOfThought} {
					client, err := llm.NewSimClient(card)
					if err != nil {
						return nil, err
					}
					clf, err := prompting.New(client, depressionDescription, tk.LabelNames,
						prompting.Config{Strategy: strat, Seed: env.Seed})
					if err != nil {
						return nil, err
					}
					if err := clf.Fit(tk.Train); err != nil {
						return nil, err
					}
					r, err := eval.Evaluate(clf, tk)
					if err != nil {
						return nil, err
					}
					row = append(row, f3(r.MacroF1))
				}
				t.AddRow(row...)
			}
			return t, nil
		},
	}
}

// ---- fig2: F1 vs number of few-shot exemplars ----

func fig2() *Experiment {
	return &Experiment{
		ID: "fig2", Title: "F1 vs few-shot exemplar count", Kind: "figure",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			ks := []int{0, 1, 2, 4, 8, 16}
			if env.Quick {
				ks = []int{0, 2, 8}
			}
			models := []string{"llama2-13b-sim", "gpt-3.5-sim"}
			header := []string{"k"}
			for _, m := range models {
				header = append(header, m+" macro-F1")
			}
			t := &Table{
				ID: "fig2", Title: "Macro-F1 vs exemplar count k, rsdd-sim",
				Header: header,
				Notes:  reconNote + " Gains should be steep for small k and saturate.",
			}
			for _, k := range ks {
				row := []string{fmt.Sprintf("%d", k)}
				for _, model := range models {
					cfg := prompting.Config{Strategy: prompting.FewShot, K: k, Seed: env.Seed}
					if k == 0 {
						cfg = prompting.Config{Strategy: prompting.ZeroShot, Seed: env.Seed}
					}
					client, err := llm.NewSimClient(llm.MustModel(model))
					if err != nil {
						return nil, err
					}
					clf, err := prompting.New(client, depressionDescription, tk.LabelNames, cfg)
					if err != nil {
						return nil, err
					}
					if err := clf.Fit(tk.Train); err != nil {
						return nil, err
					}
					r, err := eval.Evaluate(clf, tk)
					if err != nil {
						return nil, err
					}
					row = append(row, f3(r.MacroF1))
				}
				t.AddRow(row...)
			}
			return t, nil
		},
	}
}

// ---- fig3: low-resource crossover ----

func fig3() *Experiment {
	return &Experiment{
		ID: "fig3", Title: "F1 vs labelled training size (prompting vs fine-tuning crossover)", Kind: "figure",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			sizes := []int{10, 30, 100, 300, 1000, 2000}
			if env.Quick {
				sizes = []int{10, 100, 300}
			}
			methods := []MethodSpec{
				{Name: "logistic-regression", Kind: "baseline",
					Build: BaselineMethods()[3].Build},
				{Name: "finetuned-encoder", Kind: "baseline",
					Build: BaselineMethods()[5].Build},
				PromptMethod("gpt-3.5-sim", depressionDescription,
					prompting.Config{Strategy: prompting.FewShot, K: 5}),
				PromptMethod("gpt-4-sim", depressionDescription,
					prompting.Config{Strategy: prompting.ZeroShot}),
			}
			header := []string{"train size"}
			for _, m := range methods {
				header = append(header, m.Name+" macro-F1")
			}
			t := &Table{
				ID: "fig3", Title: "Macro-F1 vs labelled training-set size, rsdd-sim",
				Header: header,
				Notes:  reconNote + " Prompting should lead at small n; fine-tuning overtakes with enough labels.",
			}
			fullTrain := tk.Train
			// Prompting results at small pools are sensitive to which
			// exemplars the pool happens to contain, so prompting
			// methods are averaged over a few seeds; trained
			// baselines see the whole pool and are run once.
			seedsFor := func(m MethodSpec) []int64 {
				if m.Kind == "prompting" && !env.Quick {
					return []int64{env.Seed, env.Seed + 1, env.Seed + 2}
				}
				return []int64{env.Seed}
			}
			for _, n := range sizes {
				sub := task.Subsample(fullTrain, n, env.Seed+int64(n))
				small := &task.Task{
					Name: tk.Name, LabelNames: tk.LabelNames,
					Train: sub, Test: tk.Test,
				}
				row := []string{fmt.Sprintf("%d", n)}
				for _, m := range methods {
					sum := 0.0
					seeds := seedsFor(m)
					for _, seed := range seeds {
						clf, err := m.Build(small, seed)
						if err != nil {
							return nil, err
						}
						r, err := eval.Evaluate(clf, small)
						if err != nil {
							return nil, err
						}
						sum += r.MacroF1
					}
					row = append(row, f3(sum/float64(len(seeds))))
				}
				t.AddRow(row...)
			}
			return t, nil
		},
	}
}

// ---- fig4: calibration ----

func fig4() *Experiment {
	return &Experiment{
		ID: "fig4", Title: "Calibration (reliability / ECE) per method", Kind: "figure",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			methods := []MethodSpec{
				BaselineMethods()[3], // logistic-regression
				BaselineMethods()[5], // finetuned-encoder
				PromptMethod("gpt-3.5-sim", depressionDescription, prompting.Config{Strategy: prompting.ZeroShot}),
				PromptMethod("gpt-4-sim", depressionDescription, prompting.Config{Strategy: prompting.ZeroShot}),
			}
			grid, err := runGrid(env, map[string]*task.Task{"rsdd-sim": tk}, methods)
			if err != nil {
				return nil, err
			}
			t := &Table{
				ID: "fig4", Title: "Calibration on rsdd-sim (ECE; lower is better)",
				Header: []string{"method", "accuracy", "ECE", "scored examples"},
				Notes:  reconNote + " LLM confidences are verbalized and over-confident by construction, mirroring the literature.",
			}
			for _, m := range methods {
				r := grid["rsdd-sim"][m.Name]
				t.AddRow(m.Name, f3(r.Accuracy), f3(r.ECE), fmt.Sprintf("%d/%d", r.Scored, r.N))
			}
			return t, nil
		},
	}
}

// ---- fig5: robustness to label noise and class imbalance ----

func fig5() *Experiment {
	return &Experiment{
		ID: "fig5", Title: "Robustness to label noise and class imbalance", Kind: "figure",
		Run: func(env *Env) (*Table, error) {
			noises := []float64{0, 0.1, 0.2, 0.3}
			posRates := []float64{0.5, 0.25, 0.1}
			if env.Quick {
				noises = []float64{0, 0.2}
				posRates = []float64{0.5, 0.1}
			}
			t := &Table{
				ID: "fig5", Title: "Macro-F1 under label-noise and imbalance sweeps (depression binary)",
				Header: []string{"condition", "logistic-regression", "finetuned-encoder", "gpt-3.5-sim/zero-shot"},
				Notes:  reconNote + " Zero-shot prompting needs no training labels, so label noise should degrade it least.",
			}
			methods := []MethodSpec{
				BaselineMethods()[3],
				BaselineMethods()[5],
				PromptMethod("gpt-3.5-sim", depressionDescription, prompting.Config{Strategy: prompting.ZeroShot}),
			}
			run := func(condition string, noise, posRate float64) error {
				spec, err := corpus.Lookup("rsdd-sim")
				if err != nil {
					return err
				}
				spec.LabelNoise = noise
				spec.ClassProbs = []float64{1 - posRate, posRate}
				if env.Quick {
					spec.N = 700
				}
				ds, err := spec.Build()
				if err != nil {
					return err
				}
				tk, err := ds.Task(0.8, env.Seed)
				if err != nil {
					return err
				}
				env.capTask(tk)
				row := []string{condition}
				for _, m := range methods {
					clf, err := m.Build(tk, env.Seed)
					if err != nil {
						return err
					}
					r, err := eval.Evaluate(clf, tk)
					if err != nil {
						return err
					}
					row = append(row, f3(r.MacroF1))
				}
				t.AddRow(row...)
				return nil
			}
			for _, nz := range noises {
				if err := run(fmt.Sprintf("noise=%.0f%%", nz*100), nz, 0.25); err != nil {
					return nil, err
				}
			}
			for _, pr := range posRates {
				if err := run(fmt.Sprintf("pos-rate=%.0f%%", pr*100), 0.03, pr); err != nil {
					return nil, err
				}
			}
			return t, nil
		},
	}
}

// ---- fig6: exemplar-selection strategies ----

func fig6() *Experiment {
	return &Experiment{
		ID: "fig6", Title: "Exemplar-selection strategies for few-shot prompting", Kind: "figure",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("erisk-sim")
			if err != nil {
				return nil, err
			}
			models := []string{"llama2-13b-sim", "gpt-3.5-sim"}
			selectors := []func() prompting.Selector{
				func() prompting.Selector { return &prompting.RandomSelector{Seed: env.Seed, NumClasses: 2} },
				func() prompting.Selector { return prompting.NewKNNSelector(256) },
				func() prompting.Selector { return prompting.NewDiverseSelector(256, 0.6) },
			}
			selNames := []string{"random", "knn", "diverse"}
			header := []string{"selector"}
			for _, m := range models {
				header = append(header, m+" macro-F1")
			}
			t := &Table{
				ID: "fig6", Title: "Few-shot (k=5) exemplar selection on erisk-sim",
				Header: header,
				Notes:  reconNote + " Retrieval-based selection should beat static random exemplars.",
			}
			for si, mkSel := range selectors {
				row := []string{selNames[si]}
				for _, model := range models {
					client, err := llm.NewSimClient(llm.MustModel(model))
					if err != nil {
						return nil, err
					}
					clf, err := prompting.New(client, depressionDescription, tk.LabelNames,
						prompting.Config{Strategy: prompting.FewShot, K: 5,
							Selector: mkSel(), Seed: env.Seed})
					if err != nil {
						return nil, err
					}
					if err := clf.Fit(tk.Train); err != nil {
						return nil, err
					}
					r, err := eval.Evaluate(clf, tk)
					if err != nil {
						return nil, err
					}
					row = append(row, f3(r.MacroF1))
				}
				t.AddRow(row...)
			}
			return t, nil
		},
	}
}

// SuiteIDs returns the sorted experiment ids.
func SuiteIDs() []string {
	out := make([]string, 0, len(Suite()))
	for _, e := range Suite() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
