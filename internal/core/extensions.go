package core

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/domain"
	"repro/internal/early"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/prompting"
	"repro/internal/task"
)

// Extension experiments beyond the survey's core tables: the
// eRisk-style early-detection setting (ext1) and the ablations the
// design calls out (ext2 parser robustness, ext3 exemplar balance).

// ---- ext1: early risk detection over user histories ----

func ext1() *Experiment {
	return &Experiment{
		ID: "ext1", Title: "Early depression detection over user histories (ERDE)", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			// Post-level training task.
			spec := corpus.Spec{
				Name: "erisk-post-train", Kind: corpus.KindDisorder,
				Classes:    []domain.Disorder{domain.Control, domain.Depression},
				ClassProbs: []float64{0.6, 0.4},
				N:          900, Difficulty: 0.55, Seed: env.Seed,
			}
			if env.Quick {
				spec.N = 400
			}
			ds, err := spec.Build()
			if err != nil {
				return nil, err
			}
			train := ds.Examples()

			// User cohort.
			uspec := corpus.ERiskUsers()
			uspec.Seed = env.Seed + 7
			if env.Quick {
				uspec.Users = 80
			}
			users, err := uspec.BuildUsers()
			if err != nil {
				return nil, err
			}

			type system struct {
				name      string
				build     func() (task.Classifier, error)
				threshold float64
			}
			systems := []system{
				{"logistic-regression monitor", func() (task.Classifier, error) {
					clf := baseline.NewLogisticRegression(2, baseline.LRConfig{Seed: env.Seed})
					return clf, clf.Fit(train)
				}, 1.5},
				{"lexicon-features monitor", func() (task.Classifier, error) {
					clf := baseline.NewLexiconFeatures(2, nil)
					return clf, clf.Fit(train)
				}, 1.5},
				{"gpt-3.5-sim/zero-shot monitor", func() (task.Classifier, error) {
					client, err := llm.NewSimClient(llm.MustModel("gpt-3.5-sim"))
					if err != nil {
						return nil, err
					}
					clf, err := prompting.New(client, depressionDescription,
						[]string{"control", "depression"},
						prompting.Config{Strategy: prompting.ZeroShot, Seed: env.Seed})
					if err != nil {
						return nil, err
					}
					return clf, clf.Fit(nil)
				}, 1.5},
			}
			t := &Table{
				ID: "ext1", Title: fmt.Sprintf("Early detection over %d user histories (lower ERDE is better)", len(users)),
				Header: []string{"system", "ERDE_5", "ERDE_50", "latency-F1", "recall", "median delay"},
				Notes:  reconNote + " Never-alarm floor ERDE equals the cohort positive rate.",
			}
			for _, s := range systems {
				clf, err := s.build()
				if err != nil {
					return nil, err
				}
				mon, err := early.NewMonitor(clf, s.threshold, 0.1)
				if err != nil {
					return nil, err
				}
				decisions, err := mon.AssessUsers(users)
				if err != nil {
					return nil, err
				}
				erde5, err := eval.ERDE(decisions, 0.1, 5)
				if err != nil {
					return nil, err
				}
				erde50, err := eval.ERDE(decisions, 0.1, 50)
				if err != nil {
					return nil, err
				}
				lf1, err := eval.LatencyWeightedF1(decisions, 0.05)
				if err != nil {
					return nil, err
				}
				var tp, gold, delaySum, alarms int
				for _, d := range decisions {
					if d.Gold {
						gold++
						if d.Alarm {
							tp++
						}
					}
					if d.Alarm {
						alarms++
						delaySum += d.Delay
					}
				}
				recall := 0.0
				if gold > 0 {
					recall = float64(tp) / float64(gold)
				}
				meanDelay := "-"
				if alarms > 0 {
					meanDelay = fmt.Sprintf("%.1f", float64(delaySum)/float64(alarms))
				}
				t.AddRow(s.name, f3(erde5), f3(erde50), f3(lf1), f3(recall), meanDelay)
			}
			return t, nil
		},
	}
}

// ---- ext2: parser-robustness ablation ----

func ext2() *Experiment {
	return &Experiment{
		ID: "ext2", Title: "Ablation: robust output parsing and retries", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			type variant struct {
				label string
				cfg   prompting.Config
			}
			models := []string{"llama2-7b-sim", "gpt-3.5-sim"}
			variants := []variant{
				{"strict, no retry", prompting.Config{Strategy: prompting.ZeroShot, StrictParse: true, MaxRetries: -1}},
				{"strict + retry", prompting.Config{Strategy: prompting.ZeroShot, StrictParse: true}},
				{"robust, no retry", prompting.Config{Strategy: prompting.ZeroShot, MaxRetries: -1}},
				{"robust + retry", prompting.Config{Strategy: prompting.ZeroShot}},
			}
			t := &Table{
				ID: "ext2", Title: "Parser-robustness ablation (zero-shot, rsdd-sim)",
				Header: []string{"model", "parsing", "accuracy", "macro-F1", "parse failures"},
				Notes: reconNote + " Robust parsing + one retry recovers the small-model formatting losses " +
					"(accuracy); note that abstention can flatter macro-F1, so failures and accuracy " +
					"are the honest columns.",
			}
			for _, model := range models {
				for _, v := range variants {
					client, err := llm.NewSimClient(llm.MustModel(model))
					if err != nil {
						return nil, err
					}
					cfg := v.cfg
					cfg.Seed = env.Seed
					clf, err := prompting.New(client, depressionDescription, tk.LabelNames, cfg)
					if err != nil {
						return nil, err
					}
					if err := clf.Fit(tk.Train); err != nil {
						return nil, err
					}
					r, err := eval.Evaluate(clf, tk)
					if err != nil {
						return nil, err
					}
					t.AddRow(model, v.label, f3(r.Accuracy), f3(r.MacroF1),
						fmt.Sprintf("%d/%d", r.Unparsed, r.N))
				}
			}
			return t, nil
		},
	}
}

// ---- ext4: annotation reliability ----

func ext4() *Experiment {
	return &Experiment{
		ID: "ext4", Title: "Annotation reliability bounds model performance", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			t := &Table{
				ID: "ext4", Title: "Annotator noise vs agreement and downstream model quality (rsdd-sim)",
				Header: []string{"annotator noise", "Fleiss kappa", "Krippendorff alpha",
					"vote-vs-gold acc", "LR F1 on voted labels"},
				Notes: reconNote + " Three simulated annotators; training labels are their majority " +
					"vote, so model quality decays with agreement — the reliability ceiling the " +
					"mental-health NLP literature keeps rediscovering.",
			}
			gold := make([]int, len(tk.Train))
			for i, ex := range tk.Train {
				gold[i] = ex.Label
			}
			for _, noise := range []float64{0.05, 0.15, 0.30} {
				panel := corpus.AnnotatorPanel{Annotators: 3, Noise: noise, Seed: env.Seed}
				ratings, err := panel.Annotate(gold, tk.NumClasses())
				if err != nil {
					return nil, err
				}
				kappa, err := eval.FleissKappa(ratings, tk.NumClasses())
				if err != nil {
					return nil, err
				}
				alpha, err := eval.KrippendorffAlpha(ratings, tk.NumClasses())
				if err != nil {
					return nil, err
				}
				voted, err := eval.MajorityVote(ratings, tk.NumClasses())
				if err != nil {
					return nil, err
				}
				agree := 0
				votedTrain := make([]task.Example, len(tk.Train))
				for i, ex := range tk.Train {
					if voted[i] == gold[i] {
						agree++
					}
					votedTrain[i] = task.Example{Text: ex.Text, Label: voted[i]}
				}
				voteAcc := float64(agree) / float64(len(gold))
				clf := baseline.NewLogisticRegression(tk.NumClasses(), baseline.LRConfig{Seed: env.Seed})
				if err := clf.Fit(votedTrain); err != nil {
					return nil, err
				}
				r, err := eval.Evaluate(clf, tk)
				if err != nil {
					return nil, err
				}
				t.AddRow(fmt.Sprintf("%.0f%%", noise*100),
					f3(kappa), f3(alpha), f3(voteAcc), f3(r.PositiveF1))
			}
			return t, nil
		},
	}
}

// ---- ext5: pairwise significance testing ----

func ext5() *Experiment {
	return &Experiment{
		ID: "ext5", Title: "Pairwise McNemar significance between key methods", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			methods := []MethodSpec{
				BaselineMethods()[3], // logistic-regression
				BaselineMethods()[5], // finetuned-encoder
				PromptMethod("gpt-3.5-sim", depressionDescription, prompting.Config{Strategy: prompting.ZeroShot}),
				PromptMethod("gpt-4-sim", depressionDescription, prompting.Config{Strategy: prompting.ChainOfThought}),
			}
			grid, err := runGrid(env, map[string]*task.Task{"rsdd-sim": tk}, methods)
			if err != nil {
				return nil, err
			}
			names := make([]string, len(methods))
			results := make([]*eval.Result, len(methods))
			for i, m := range methods {
				names[i] = m.Name
				results[i] = grid["rsdd-sim"][m.Name]
			}
			header := append([]string{"method (acc)"}, names...)
			t := &Table{
				ID: "ext5", Title: "McNemar p-values between methods on the same rsdd-sim test set",
				Header: header,
				Notes: reconNote + " Cells are two-sided McNemar p-values on paired decisions; " +
					"p < 0.05 means the row and column methods genuinely differ. Benchmarks that " +
					"skip this test routinely over-claim.",
			}
			for i := range methods {
				row := []string{fmt.Sprintf("%s (%.3f)", names[i], results[i].Accuracy)}
				for j := range methods {
					if i == j {
						row = append(row, "-")
						continue
					}
					_, p, err := eval.CompareMcNemar(results[i], results[j])
					if err != nil {
						return nil, err
					}
					row = append(row, fmt.Sprintf("%.3g", p))
				}
				t.AddRow(row...)
			}
			return t, nil
		},
	}
}

// ---- ext3: exemplar class-balance ablation ----

func ext3() *Experiment {
	return &Experiment{
		ID: "ext3", Title: "Ablation: few-shot exemplar class balance", Kind: "table",
		Run: func(env *Env) (*Table, error) {
			tk, err := env.buildTask("rsdd-sim")
			if err != nil {
				return nil, err
			}
			// One-sided pool: positives only.
			var posOnly []task.Example
			for _, ex := range tk.Train {
				if ex.Label == 1 {
					posOnly = append(posOnly, ex)
				}
			}
			t := &Table{
				ID: "ext3", Title: "Few-shot (k=6) exemplar balance, gpt-3.5-sim on rsdd-sim",
				Header: []string{"exemplar pool", "macro-F1", "accuracy"},
				Notes:  reconNote + " One-sided demonstrations lose the threshold-recalibration benefit of balanced ones.",
			}
			pools := []struct {
				name string
				pool []task.Example
			}{
				{"class-balanced", tk.Train},
				{"positives only", posOnly},
			}
			for _, p := range pools {
				client, err := llm.NewSimClient(llm.MustModel("gpt-3.5-sim"))
				if err != nil {
					return nil, err
				}
				clf, err := prompting.New(client, depressionDescription, tk.LabelNames,
					prompting.Config{Strategy: prompting.FewShot, K: 6, Seed: env.Seed})
				if err != nil {
					return nil, err
				}
				if err := clf.Fit(p.pool); err != nil {
					return nil, err
				}
				r, err := eval.Evaluate(clf, tk)
				if err != nil {
					return nil, err
				}
				t.AddRow(p.name, f3(r.MacroF1), f3(r.Accuracy))
			}
			return t, nil
		},
	}
}
