package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/task"
)

func quickEnv() *Env { return &Env{Seed: 2025, Quick: true} }

func TestTableMarkdownAndCSV(t *testing.T) {
	tb := &Table{
		ID: "t", Title: "demo",
		Header: []string{"a", "b"},
		Notes:  "note",
	}
	tb.AddRow("x", "1")
	tb.AddRow("y,with,commas", "2")
	md := tb.Markdown()
	if !strings.Contains(md, "| a") || !strings.Contains(md, "demo") || !strings.Contains(md, "_note_") {
		t.Errorf("markdown:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "\"y,with,commas\"") {
		t.Errorf("csv quoting broken:\n%s", csv)
	}
	if tb.Cell(0, 0) != "x" || tb.Cell(9, 9) != "" {
		t.Error("Cell accessor broken")
	}
	if tb.FindRow("x") != 0 || tb.FindRow("nope") != -1 {
		t.Error("FindRow broken")
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.AddRow("1")
	tb.AddRow("1", "2", "3", "4")
	if len(tb.Rows[0]) != 3 || tb.Rows[0][1] != "" {
		t.Errorf("padding broken: %v", tb.Rows[0])
	}
	if len(tb.Rows[1]) != 3 {
		t.Errorf("truncation broken: %v", tb.Rows[1])
	}
}

func TestSuiteCompleteAndLookup(t *testing.T) {
	ids := SuiteIDs()
	want := []string{"ext1", "ext2", "ext3", "ext4", "ext5",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table1", "table2", "table3", "table4", "table5", "table6", "table7"}
	if len(ids) != len(want) {
		t.Fatalf("suite ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if _, err := LookupExperiment("table2"); err != nil {
		t.Error(err)
	}
	if _, err := LookupExperiment("table99"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestEnvCaps(t *testing.T) {
	env := quickEnv()
	tk, err := env.buildTask("rsdd-sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(tk.Train) > env.trainCap() {
		t.Errorf("train %d exceeds cap %d", len(tk.Train), env.trainCap())
	}
	if len(tk.Test) > env.testCap() {
		t.Errorf("test %d exceeds cap %d", len(tk.Test), env.testCap())
	}
	if err := tk.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Stats(t *testing.T) {
	tb, err := table1().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("expected 7 dataset rows, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		n, err := strconv.Atoi(row[1])
		if err != nil || n <= 0 {
			t.Errorf("bad post count %q for %s", row[1], row[0])
		}
	}
}

// parseF reads a float cell, failing the test on malformed cells.
func parseF(t *testing.T, tb *Table, row int, col int) float64 {
	t.Helper()
	cell := tb.Cell(row, col)
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a float in table %s", row, col, cell, tb.ID)
	}
	return v
}

func TestTable2ShapesHold(t *testing.T) {
	tb, err := table2().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 is rsdd-sim F1+. The survey's core ordering:
	// fine-tuned encoder and linear baselines beat zero-shot LLMs;
	// every real method beats majority.
	get := func(name string) float64 {
		i := tb.FindRow(name)
		if i < 0 {
			t.Fatalf("method %s missing", name)
		}
		return parseF(t, tb, i, 1)
	}
	maj := get("majority")
	lr := get("logistic-regression")
	enc := get("finetuned-encoder")
	zs35 := get("gpt-3.5-sim/zero-shot")
	fs35 := get("gpt-3.5-sim/few-shot-5")
	if lr <= maj || enc <= maj {
		t.Errorf("trained methods must beat majority: lr=%.3f enc=%.3f maj=%.3f", lr, enc, maj)
	}
	if zs35 <= maj {
		t.Errorf("zero-shot LLM must beat majority: %.3f vs %.3f", zs35, maj)
	}
	if enc < zs35-0.02 {
		t.Errorf("fine-tuned encoder (%.3f) should not trail zero-shot gpt-3.5 (%.3f) in-domain", enc, zs35)
	}
	if fs35 < zs35-0.05 {
		t.Errorf("few-shot (%.3f) should not trail zero-shot (%.3f) by a wide margin", fs35, zs35)
	}
}

func TestTable6PromptAblation(t *testing.T) {
	tb, err := table6().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("expected 9 strategies, got %d", len(tb.Rows))
	}
	// few-shot-10 should beat zero-shot.
	zs := parseF(t, tb, tb.FindRow("gpt-3.5-sim/zero-shot"), 1)
	fs10 := parseF(t, tb, tb.FindRow("gpt-3.5-sim/few-shot-10"), 1)
	if fs10 <= zs-0.02 {
		t.Errorf("few-shot-10 (%.3f) should not trail zero-shot (%.3f)", fs10, zs)
	}
}

func TestTable7CostAccounting(t *testing.T) {
	tb, err := table7().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	row0 := tb.FindRow("gpt-3.5-sim/zero-shot")
	row10 := tb.FindRow("gpt-3.5-sim/few-shot-10")
	if row0 < 0 || row10 < 0 {
		t.Fatalf("missing rows in:\n%s", tb.Markdown())
	}
	in0 := parseF(t, tb, row0, 1)
	in10 := parseF(t, tb, row10, 1)
	if in10 <= in0 {
		t.Errorf("few-shot-10 input tokens (%v) must exceed zero-shot (%v)", in10, in0)
	}
	// gpt-4 must cost more than gpt-3.5 at the same strategy.
	c35 := parseF(t, tb, row0, 3)
	c4 := parseF(t, tb, tb.FindRow("gpt-4-sim/zero-shot"), 3)
	if c4 <= c35 {
		t.Errorf("gpt-4 cost (%v) must exceed gpt-3.5 (%v)", c4, c35)
	}
}

func TestFig1EmergenceShape(t *testing.T) {
	tb, err := fig1().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, tb, 0, 1)                // smallest model zero-shot
	last := parseF(t, tb, len(tb.Rows)-1, 1)    // largest model zero-shot
	lastCoT := parseF(t, tb, len(tb.Rows)-1, 2) // largest model CoT
	if last <= first {
		t.Errorf("zero-shot F1 should rise with scale: %.3f -> %.3f", first, last)
	}
	smallCoT := parseF(t, tb, 0, 2)
	if smallCoT >= lastCoT {
		t.Errorf("CoT F1 should rise with scale: %.3f -> %.3f", smallCoT, lastCoT)
	}
}

func TestFig3CrossoverShape(t *testing.T) {
	tb, err := fig3().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	// At the smallest training size, zero-shot gpt-4 should beat the
	// fine-tuned encoder; at the largest size in the sweep the gap
	// must close or reverse.
	encFirst := parseF(t, tb, 0, 2)
	gpt4First := parseF(t, tb, 0, 4)
	encLast := parseF(t, tb, len(tb.Rows)-1, 2)
	gpt4Last := parseF(t, tb, len(tb.Rows)-1, 4)
	if gpt4First <= encFirst {
		t.Errorf("at n=10 prompting (%.3f) should beat fine-tuning (%.3f)", gpt4First, encFirst)
	}
	if encLast-gpt4Last <= encFirst-gpt4First {
		t.Errorf("fine-tuning should gain on prompting with more data: gaps %.3f -> %.3f",
			encFirst-gpt4First, encLast-gpt4Last)
	}
}

func TestFig6SelectorShape(t *testing.T) {
	tb, err := fig6().Run(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	rnd := parseF(t, tb, tb.FindRow("random"), 2)
	knn := parseF(t, tb, tb.FindRow("knn"), 2)
	if knn < rnd-0.03 {
		t.Errorf("knn selection (%.3f) should not trail random (%.3f) meaningfully", knn, rnd)
	}
}

func TestRunGridPropagatesErrors(t *testing.T) {
	env := quickEnv()
	tk, err := env.buildTask("rsdd-sim")
	if err != nil {
		t.Fatal(err)
	}
	bad := MethodSpec{Name: "broken", Build: func(*task.Task, int64) (task.Classifier, error) {
		return nil, strconv.ErrRange
	}}
	_, err = runGrid(env, map[string]*task.Task{"d": tk}, []MethodSpec{bad})
	if err == nil {
		t.Error("grid must surface build errors")
	}
}

func TestRunGridParallelDeterministic(t *testing.T) {
	env := quickEnv()
	tk, err := env.buildTask("twitsuicide-sim")
	if err != nil {
		t.Fatal(err)
	}
	methods := []MethodSpec{BaselineMethods()[2], BaselineMethods()[3]}
	run := func(par int) map[string]map[string]*eval.Result {
		e := &Env{Seed: env.Seed, Quick: true, Parallelism: par}
		grid, err := runGrid(e, map[string]*task.Task{"d": tk}, methods)
		if err != nil {
			t.Fatal(err)
		}
		return grid
	}
	g1 := run(1)
	g4 := run(4)
	for _, m := range methods {
		if g1["d"][m.Name].MacroF1 != g4["d"][m.Name].MacroF1 {
			t.Errorf("%s: parallelism changed results", m.Name)
		}
	}
}

func TestStandardMethodsNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range StandardMethods("x") {
		if seen[m.Name] {
			t.Errorf("duplicate method name %s", m.Name)
		}
		seen[m.Name] = true
	}
}
