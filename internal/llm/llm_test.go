package llm

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/domain"
)

func TestCatalogValid(t *testing.T) {
	if len(Catalog()) < 6 {
		t.Fatalf("catalog too small: %d", len(Catalog()))
	}
	for _, c := range Catalog() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestLookupModel(t *testing.T) {
	if _, err := LookupModel("gpt-4-sim"); err != nil {
		t.Errorf("gpt-4-sim missing: %v", err)
	}
	if _, err := LookupModel("gpt-17"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestCapabilityMonotoneInScale(t *testing.T) {
	sweep := ScaleSweep([]float64{0.1, 1, 10, 100, 1000})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].InstructionFollow() <= sweep[i-1].InstructionFollow() {
			t.Errorf("instruction following not increasing at %s", sweep[i].Name)
		}
		if sweep[i].DecisionNoise() >= sweep[i-1].DecisionNoise() {
			t.Errorf("decision noise not decreasing at %s", sweep[i].Name)
		}
		if sweep[i].KnowledgeNoise() >= sweep[i-1].KnowledgeNoise() {
			t.Errorf("knowledge noise not decreasing at %s", sweep[i].Name)
		}
	}
}

func TestCoTEmergence(t *testing.T) {
	small := ScaleSweep([]float64{1})[0]
	big := ScaleSweep([]float64{1000})[0]
	if small.CoTNoiseMult() <= 1 {
		t.Errorf("CoT should hurt a 1B model: mult = %v", small.CoTNoiseMult())
	}
	if big.CoTNoiseMult() >= 1 {
		t.Errorf("CoT should help a 1000B model: mult = %v", big.CoTNoiseMult())
	}
}

func TestScaleSweepPricing(t *testing.T) {
	for _, c := range ScaleSweep([]float64{0.5, 5, 50}) {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

const classifyPrompt = `You are a mental health content triage assistant.
Classify the following social media post for signs of depression.
Options: control, depression
Post: i feel so hopeless and worthless lately, crying every night and nothing matters
Label:`

const controlPrompt = `You are a mental health content triage assistant.
Classify the following social media post for signs of depression.
Options: control, depression
Post: great weekend hiking with friends, made a delicious dinner and watched the playoffs
Label:`

func TestParsePromptClassification(t *testing.T) {
	p := parsePrompt("", classifyPrompt)
	if !p.isTask {
		t.Fatal("prompt should parse as a task")
	}
	if len(p.labels) != 2 || p.labels[0] != "control" || p.labels[1] != "depression" {
		t.Errorf("labels = %v", p.labels)
	}
	if !strings.Contains(p.query, "hopeless") {
		t.Errorf("query = %q", p.query)
	}
	if p.cot {
		t.Error("no CoT requested")
	}
	if p.topicHint == "" {
		t.Error("topic hint should detect depression")
	}
}

func TestParsePromptFewShot(t *testing.T) {
	prompt := `Classify the post. Options: control, depression
Post: feeling hopeless again
Label: depression
Post: fun day at the beach
Label: control
Post: i cant stop crying, everything is pointless
Label:`
	p := parsePrompt("", prompt)
	if !p.isTask {
		t.Fatal("should parse as task")
	}
	if len(p.exemplars) != 2 {
		t.Fatalf("exemplars = %d, want 2", len(p.exemplars))
	}
	if p.exemplars[0].label != "depression" || p.exemplars[1].label != "control" {
		t.Errorf("exemplar labels = %v", p.exemplars)
	}
	if !strings.Contains(p.query, "pointless") {
		t.Errorf("query = %q", p.query)
	}
}

func TestParsePromptCoT(t *testing.T) {
	p := parsePrompt("", "Think step by step.\nOptions: a, b\nPost: xyz\nLabel:")
	if !p.cot {
		t.Error("CoT flag not detected")
	}
}

func TestParsePromptNonTask(t *testing.T) {
	p := parsePrompt("", "write me a poem about autumn")
	if p.isTask {
		t.Error("free-form prompt must not parse as task")
	}
}

func TestParsePromptPipeSeparatedLabels(t *testing.T) {
	p := parsePrompt("", "Answer with one of: none | low | moderate | severe\nPost: hello\nLabel:")
	if len(p.labels) != 4 {
		t.Errorf("labels = %v", p.labels)
	}
}

func TestCompleteDeterministic(t *testing.T) {
	c := MustSimClient(MustModel("gpt-3.5-sim"))
	req := Request{Prompt: classifyPrompt, Seed: 7}
	r1, err := c.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := c.Complete(context.Background(), req)
	if r1.Text != r2.Text {
		t.Errorf("completion not deterministic:\n%q\n%q", r1.Text, r2.Text)
	}
	r3, _ := c.Complete(context.Background(), Request{Prompt: classifyPrompt, Seed: 8})
	_ = r3 // different seed may or may not change the text; just must not error
}

func TestCompleteClassifiesObviousPosts(t *testing.T) {
	c := MustSimClient(MustModel("gpt-4-sim"))
	depHits, ctlHits := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		r, err := c.Complete(context.Background(), Request{Prompt: classifyPrompt, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(strings.ToLower(r.Text), "depression") {
			depHits++
		}
		r, _ = c.Complete(context.Background(), Request{Prompt: controlPrompt, Seed: seed})
		if strings.Contains(strings.ToLower(r.Text), "control") {
			ctlHits++
		}
	}
	if depHits < 14 {
		t.Errorf("gpt-4-sim labelled obvious depression post correctly only %d/20 times", depHits)
	}
	if ctlHits < 14 {
		t.Errorf("gpt-4-sim labelled obvious control post correctly only %d/20 times", ctlHits)
	}
}

func TestScaleImprovesAccuracy(t *testing.T) {
	correct := func(model string) int {
		c := MustSimClient(MustModel(model))
		n := 0
		for seed := int64(0); seed < 30; seed++ {
			r, err := c.Complete(context.Background(), Request{Prompt: classifyPrompt, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(strings.ToLower(r.Text), "depression") {
				n++
			}
		}
		return n
	}
	tiny := correct("tiny-1b-sim")
	big := correct("gpt-4-sim")
	if big <= tiny {
		t.Errorf("gpt-4-sim (%d/30) should beat tiny-1b-sim (%d/30)", big, tiny)
	}
}

func TestTinyModelProducesFormatErrors(t *testing.T) {
	c := MustSimClient(MustModel("tiny-1b-sim"))
	clean := 0
	for seed := int64(0); seed < 40; seed++ {
		r, err := c.Complete(context.Background(), Request{Prompt: classifyPrompt, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(r.Text, "Label:") {
			clean++
		}
	}
	if clean == 40 {
		t.Error("tiny model should produce some malformed outputs")
	}
	if clean == 0 {
		t.Error("tiny model should produce some clean outputs too")
	}
}

func TestCoTCompletionCitesCues(t *testing.T) {
	c := MustSimClient(MustModel("gpt-4-sim"))
	prompt := strings.Replace(classifyPrompt, "Classify", "Think step by step, then classify", 1)
	var got string
	for seed := int64(0); seed < 10; seed++ {
		r, err := c.Complete(context.Background(), Request{Prompt: prompt, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(r.Text, "Reasoning:") {
			got = r.Text
			break
		}
	}
	if got == "" {
		t.Fatal("no CoT completion produced in 10 tries")
	}
	if !strings.Contains(got, "Label:") {
		t.Errorf("CoT completion missing label line: %q", got)
	}
}

func TestUsageAccounting(t *testing.T) {
	c := MustSimClient(MustModel("gpt-3.5-sim"))
	before := c.Usage()
	if before.Calls != 0 {
		t.Fatal("fresh client should have zero usage")
	}
	r, err := c.Complete(context.Background(), Request{Prompt: classifyPrompt, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.TokensIn <= 0 || r.TokensOut <= 0 {
		t.Errorf("token accounting: in=%d out=%d", r.TokensIn, r.TokensOut)
	}
	if r.CostUSD <= 0 {
		t.Errorf("cost = %v", r.CostUSD)
	}
	if r.Latency <= 0 {
		t.Errorf("latency = %v", r.Latency)
	}
	after := c.Usage()
	if after.Calls != 1 || after.TokensIn != r.TokensIn || after.CostUSD != r.CostUSD {
		t.Errorf("usage not accumulated: %+v vs %+v", after, r)
	}
}

func TestRequestValidation(t *testing.T) {
	c := MustSimClient(MustModel("gpt-3.5-sim"))
	ctx := context.Background()
	if _, err := c.Complete(ctx, Request{}); err == nil {
		t.Error("empty prompt must error")
	}
	if _, err := c.Complete(ctx, Request{Prompt: "x", Temperature: 3}); err == nil {
		t.Error("temperature out of range must error")
	}
	if _, err := c.Complete(ctx, Request{Prompt: "x", MaxTokens: -1}); err == nil {
		t.Error("negative MaxTokens must error")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Complete(cancelled, Request{Prompt: "x"}); err == nil {
		t.Error("cancelled context must error")
	}
}

func TestMaxTokensTruncates(t *testing.T) {
	c := MustSimClient(MustModel("tiny-1b-sim"))
	r, err := c.Complete(context.Background(),
		Request{Prompt: "tell me everything about goats", MaxTokens: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Fields(r.Text)); n > 5 {
		t.Errorf("truncation failed: %d words (%q)", n, r.Text)
	}
}

func TestKnowledgeNoiseShrinksWithScale(t *testing.T) {
	drift := func(model string) float64 {
		k := newKnowledge(MustModel(model))
		noisy := k.lexFor(domain.Depression)
		total := 0.0
		base := MustModel(model) // silence linter; base lexicon next line
		_ = base
		for _, e := range noisyBaseEntries() {
			total += math.Abs(noisy.Weight(e.term) - e.weight)
		}
		return total
	}
	if drift("gpt-4-sim") >= drift("tiny-1b-sim") {
		t.Errorf("gpt-4-sim knowledge drift (%.3f) should be below tiny-1b-sim (%.3f)",
			drift("gpt-4-sim"), drift("tiny-1b-sim"))
	}
}

// noisyBaseEntries returns a stable probe set of canonical
// depression terms and weights.
func noisyBaseEntries() []struct {
	term   string
	weight float64
} {
	return []struct {
		term   string
		weight float64
	}{
		{"hopeless", 1.0}, {"worthless", 1.0}, {"numb", 0.8},
		{"lonely", 0.65}, {"sad", 0.5}, {"empty inside", 1.0},
	}
}

func TestGroundLabelSeverity(t *testing.T) {
	g := groundLabel("moderate", "suicide risk", false)
	if !g.known || !g.isSev || g.disorder != domain.SuicidalIdeation {
		t.Errorf("grounding = %+v", g)
	}
	g = groundLabel("severe", "depression", false)
	if g.disorder != domain.Depression {
		t.Errorf("severity topic grounding = %+v", g)
	}
	g = groundLabel("not depressed", "", false)
	if !g.known || g.disorder != domain.Control {
		t.Errorf("synonym grounding = %+v", g)
	}
	g = groundLabel("penguin", "", false)
	if g.known {
		t.Error("unknown label should not ground")
	}
}

func TestGroundLabelsSeverityTask(t *testing.T) {
	gs := groundLabels([]string{"none", "low", "moderate", "severe"}, "suicide risk")
	for i, g := range gs {
		if !g.isSev {
			t.Errorf("label %d must ground as severity in a severity task: %+v", i, g)
		}
		if g.severity != domain.Severity(i) {
			t.Errorf("label %d grounded as severity %v", i, g.severity)
		}
	}
	// In a disorder task, "none" grounds as Control.
	gs = groundLabels([]string{"none", "depression"}, "depression")
	if gs[0].isSev || gs[0].disorder != domain.Control {
		t.Errorf("disorder-task 'none' grounding = %+v", gs[0])
	}
}

func TestGaussianFromHashStable(t *testing.T) {
	a := gaussianFromHash("m", "term")
	b := gaussianFromHash("m", "term")
	if a != b {
		t.Error("hash gaussian not stable")
	}
	if a == gaussianFromHash("m2", "term") && a == gaussianFromHash("m", "term2") {
		t.Error("hash gaussian suspiciously collision-happy")
	}
	// Roughly bounded.
	for i := 0; i < 200; i++ {
		g := gaussianFromHash("model", fmt.Sprintf("t%d", i))
		if g < -4 || g > 4 {
			t.Errorf("gaussian %v out of plausible range", g)
		}
	}
}

func TestGenericCompletionForNonTask(t *testing.T) {
	c := MustSimClient(MustModel("gpt-3.5-sim"))
	r, err := c.Complete(context.Background(), Request{Prompt: "hello there", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Text, "Label:") {
		t.Errorf("non-task prompt produced a label: %q", r.Text)
	}
}
