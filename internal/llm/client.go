package llm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/textkit"
)

// Request is one completion call.
type Request struct {
	System      string  // system prompt (optional)
	Prompt      string  // user prompt
	Temperature float64 // 0 = deterministic-ish; higher = noisier
	MaxTokens   int     // output cap; 0 means the model default (256)
	Seed        int64   // sampling seed; same seed + prompt => same output
}

// Response is the completion plus its accounting.
type Response struct {
	Text      string
	TokensIn  int
	TokensOut int
	Latency   time.Duration // simulated wall time
	CostUSD   float64
}

// Client is the provider-shaped completion interface every
// prompting-based method is written against. Implementations must be
// safe for concurrent use.
type Client interface {
	// Model returns the card of the model behind the client.
	Model() ModelCard
	// Complete runs one completion. ctx cancellation is honoured.
	Complete(ctx context.Context, req Request) (Response, error)
	// Usage returns cumulative accounting since construction.
	Usage() Usage
}

// Usage accumulates token/cost accounting across calls.
type Usage struct {
	Calls     int
	TokensIn  int
	TokensOut int
	CostUSD   float64
	// SimLatency is the total simulated latency (not wall time).
	SimLatency time.Duration
}

// usageMeter is the shared thread-safe accumulator.
type usageMeter struct {
	mu sync.Mutex
	u  Usage
}

func (m *usageMeter) add(r Response) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.u.Calls++
	m.u.TokensIn += r.TokensIn
	m.u.TokensOut += r.TokensOut
	m.u.CostUSD += r.CostUSD
	m.u.SimLatency += r.Latency
}

func (m *usageMeter) snapshot() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.u
}

// account fills the bookkeeping fields of a response for the given
// model and prompt.
func account(card ModelCard, system, prompt, completion string) Response {
	in := textkit.CountTokens(system) + textkit.CountTokens(prompt)
	out := textkit.CountTokens(completion)
	lat := time.Duration(float64(out)/card.TokensPerSec*float64(time.Second)) +
		120*time.Millisecond // fixed network/queue overhead
	cost := float64(in)/1e6*card.InputPricePerM + float64(out)/1e6*card.OutputPricePerM
	return Response{
		Text:      completion,
		TokensIn:  in,
		TokensOut: out,
		Latency:   lat,
		CostUSD:   cost,
	}
}

// validateRequest rejects malformed requests uniformly across
// implementations.
func validateRequest(req Request) error {
	if req.Prompt == "" {
		return fmt.Errorf("llm: empty prompt")
	}
	if req.Temperature < 0 || req.Temperature > 2 {
		return fmt.Errorf("llm: temperature %v out of [0,2]", req.Temperature)
	}
	if req.MaxTokens < 0 {
		return fmt.Errorf("llm: negative MaxTokens %d", req.MaxTokens)
	}
	return nil
}
