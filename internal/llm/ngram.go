package llm

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/textkit"
)

// ngramLM is a Kneser-Ney-free, add-k-smoothed bigram language model
// used by the simulated models for free-text generation (generic
// completions and rationale padding). It is intentionally the
// classic "statistical LM" stage of the field's history: enough to
// produce fluent-looking register, nowhere near enough to reason —
// the reasoning in this simulator lives in the evidence scorer, as
// it should.
type ngramLM struct {
	// next[token] lists the continuations of token with cumulative
	// probabilities for sampling, sorted for determinism.
	next   map[string][]continuation
	starts []continuation
}

type continuation struct {
	token string
	cum   float64 // cumulative probability within the list
}

// trainNgramLM builds the bigram tables from a corpus of documents.
func trainNgramLM(corpus []string) *ngramLM {
	counts := map[string]map[string]float64{}
	startCounts := map[string]float64{}
	bump := func(m map[string]float64, k string) {
		m[k]++
	}
	for _, doc := range corpus {
		toks := textkit.Words(textkit.Normalize(doc))
		if len(toks) == 0 {
			continue
		}
		bump(startCounts, toks[0])
		for i := 0; i+1 < len(toks); i++ {
			if counts[toks[i]] == nil {
				counts[toks[i]] = map[string]float64{}
			}
			bump(counts[toks[i]], toks[i+1])
		}
	}
	lm := &ngramLM{next: make(map[string][]continuation, len(counts))}
	lm.starts = toCumulative(startCounts)
	for tok, m := range counts {
		lm.next[tok] = toCumulative(m)
	}
	return lm
}

// toCumulative converts raw counts to a cumulative-probability list
// sorted by token for deterministic sampling.
func toCumulative(m map[string]float64) []continuation {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	total := 0.0
	for k, v := range m {
		keys = append(keys, k)
		total += v
	}
	sort.Strings(keys)
	out := make([]continuation, 0, len(keys))
	acc := 0.0
	for _, k := range keys {
		acc += m[k] / total
		out = append(out, continuation{token: k, cum: acc})
	}
	return out
}

// sample draws a continuation of prev (or a sentence start when prev
// has no continuations) using the provided RNG.
func (lm *ngramLM) sample(prev string, rng *rand.Rand) string {
	list := lm.next[prev]
	if len(list) == 0 {
		list = lm.starts
	}
	if len(list) == 0 {
		return ""
	}
	r := rng.Float64()
	idx := sort.Search(len(list), func(i int) bool { return list[i].cum >= r })
	if idx == len(list) {
		idx = len(list) - 1
	}
	return list[idx].token
}

// Generate produces up to n tokens of text starting from a sampled
// sentence start, deterministic under the RNG.
func (lm *ngramLM) Generate(n int, rng *rand.Rand) string {
	if n <= 0 {
		return ""
	}
	var out []string
	tok := lm.sample("", rng)
	for tok != "" && len(out) < n {
		out = append(out, tok)
		tok = lm.sample(tok, rng)
	}
	return strings.Join(out, " ")
}

// lmCorpus is the seed text the shared background LM is trained on:
// neutral assistant-ish register, so generic completions read like a
// chat model being unhelpfully pleasant.
var lmCorpus = []string{
	"i can help with that request and here is a short summary of the key points to consider",
	"here are the main points to keep in mind when thinking about this topic in general",
	"it is worth noting that context matters and the details can change the overall picture",
	"a good starting point is to look at the main factors and weigh them carefully",
	"in general the best approach depends on the goals and the constraints involved",
	"there are several ways to look at this and each has its own trade offs to consider",
	"to summarize the main idea is to balance the different factors against each other",
	"this is a broad topic and a short answer can only cover the essential points",
	"the key points are listed below and each one can be expanded with more detail",
	"please keep in mind that this is a general overview rather than specific advice",
}

// backgroundLM is the shared generation model (immutable after
// construction, safe for concurrent sampling with per-request RNGs).
var backgroundLM = trainNgramLM(lmCorpus)
