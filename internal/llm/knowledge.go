package llm

import (
	"hash/fnv"
	"math"
	"strings"
	"sync"

	"repro/internal/domain"
	"repro/internal/lexicon"
)

// knowledge is a model's internal grounding: per-disorder lexicons
// whose weights are a deterministically noised copy of the canonical
// ones. The distortion shrinks with model scale (KnowledgeNoise), so
// larger models "know" the clinical vocabulary more faithfully —
// but no model matches any dataset's generating weights exactly,
// which is the domain gap that keeps zero-shot behind fine-tuning.
type knowledge struct {
	card ModelCard

	mu    sync.Mutex
	cache map[domain.Disorder]*lexicon.Lexicon
}

func newKnowledge(card ModelCard) *knowledge {
	return &knowledge{card: card, cache: make(map[domain.Disorder]*lexicon.Lexicon)}
}

// lexFor returns the model's noised lexicon for a disorder.
func (k *knowledge) lexFor(d domain.Disorder) *lexicon.Lexicon {
	k.mu.Lock()
	defer k.mu.Unlock()
	if l, ok := k.cache[d]; ok {
		return l
	}
	base := lexicon.MustForDisorder(d)
	noise := k.card.KnowledgeNoise()
	entries := base.Entries()
	out := make([]lexicon.Entry, 0, len(entries))
	for _, e := range entries {
		g := gaussianFromHash(k.card.Name, e.Term)
		w := e.Weight * (1 + noise*g)
		if w < 0.02 {
			w = 0.02
		}
		if w > 1.2 {
			w = 1.2
		}
		out = append(out, lexicon.Entry{Term: e.Term, Weight: w})
	}
	l := lexicon.New(base.Name()+"@"+k.card.Name, out)
	k.cache[d] = l
	return l
}

// gaussianFromHash returns a deterministic pseudo-gaussian in about
// [-3, 3] derived from hashing (model, term): the sum of four
// uniform(-1,1) draws scaled to unit variance.
func gaussianFromHash(model, term string) float64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(term))
	x := h.Sum64()
	sum := 0.0
	for i := 0; i < 4; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		u := float64(x>>11) / float64(1<<53) // [0,1)
		sum += 2*u - 1
	}
	// Var of one uniform(-1,1) is 1/3; of the sum, 4/3.
	return sum / math.Sqrt(4.0/3.0)
}

// labelGrounding maps a label name to the scoring recipe the model
// uses for it.
type labelGrounding struct {
	disorder domain.Disorder
	severity domain.Severity
	isSev    bool
	known    bool
}

// groundLabels resolves the label set against the model's ontology.
// It first decides whether the set describes a *severity* task (two
// or more unambiguous severity words such as "low"/"moderate"/
// "severe") — in that case ambiguous labels like "none" ground as
// severities of the topic disorder rather than as the Control class.
func groundLabels(labels []string, topicHint string) []labelGrounding {
	sevCount := 0
	for _, l := range labels {
		switch strings.ToLower(strings.TrimSpace(l)) {
		case "low", "moderate", "severe", "b", "c", "d":
			sevCount++
		}
	}
	sevTask := sevCount >= 2
	out := make([]labelGrounding, len(labels))
	for i, l := range labels {
		out[i] = groundLabel(l, topicHint, sevTask)
	}
	return out
}

// groundLabel resolves one label string. Severity words resolve to
// the topic disorder from the instruction hint (defaulting to
// suicidal ideation, the canonical risk task).
func groundLabel(label, topicHint string, severityFirst bool) labelGrounding {
	parseSev := func() (labelGrounding, bool) {
		if sv, err := domain.ParseSeverity(label); err == nil {
			return labelGrounding{disorder: topicDisorder(topicHint), severity: sv, isSev: true, known: true}, true
		}
		return labelGrounding{}, false
	}
	if severityFirst {
		if g, ok := parseSev(); ok {
			return g
		}
	}
	if d, err := domain.ParseDisorder(label); err == nil {
		return labelGrounding{disorder: d, known: true}
	}
	if g, ok := parseSev(); ok {
		return g
	}
	// Loose synonyms seen in prompt wordings.
	switch strings.ToLower(strings.TrimSpace(label)) {
	case "not depressed", "no depression":
		return labelGrounding{disorder: domain.Control, known: true}
	case "depressed":
		return labelGrounding{disorder: domain.Depression, known: true}
	case "stressful", "not stressful":
		return labelGrounding{disorder: domain.Stress, known: true}
	}
	return labelGrounding{}
}

func topicDisorder(hint string) domain.Disorder {
	switch {
	case strings.Contains(hint, "suicid"), strings.Contains(hint, "risk"), strings.Contains(hint, "self-harm"):
		return domain.SuicidalIdeation
	case strings.Contains(hint, "depress"):
		return domain.Depression
	case strings.Contains(hint, "anx"):
		return domain.Anxiety
	case strings.Contains(hint, "stress"):
		return domain.Stress
	case strings.Contains(hint, "ptsd"), strings.Contains(hint, "trauma"):
		return domain.PTSD
	case strings.Contains(hint, "eating"), strings.Contains(hint, "anorexia"), strings.Contains(hint, "bulimia"):
		return domain.EatingDisorder
	case strings.Contains(hint, "bipolar"), strings.Contains(hint, "mania"):
		return domain.Bipolar
	}
	return domain.SuicidalIdeation
}

// severityCenters are the model's generic threshold centers for
// mapping a topic-lexicon score onto graded severity levels,
// calibrated against the corpus generator's observed score bands.
var severityCenters = [...]float64{
	domain.SeverityNone:     0.02,
	domain.SeverityLow:      0.10,
	domain.SeverityModerate: 0.21,
	domain.SeveritySevere:   0.55,
}

// phi computes the evidence feature for one label on a token
// sequence: for disorder labels, the (noised) lexicon score — with
// the control class scored by neutral-vocabulary presence minus
// negative-emotion presence; for severity labels, proximity of the
// topic score to the level's generic center.
func (k *knowledge) phi(g labelGrounding, tokens []string) float64 {
	if !g.known {
		return 0
	}
	if g.isSev {
		s := k.lexFor(g.disorder).Score(tokens)
		center := severityCenters[g.severity] + k.thresholdBias("sev-"+g.severity.String())
		// Amplified so adjacent-level differences are decision-sized.
		return -5 * math.Abs(s-center)
	}
	if g.disorder == domain.Control {
		neu := k.lexFor(domain.Control).Score(tokens)
		neg := lexicon.NegativeEmotion().Score(tokens)
		return 0.06 + k.thresholdBias("ctrl") + 0.25*neu - 0.20*neg
	}
	return k.lexFor(g.disorder).Score(tokens)
}

// thresholdBias is the model's systematic zero-shot decision-boundary
// miscalibration: a deterministic offset that shrinks (but never
// vanishes) with scale. Few-shot exemplars exist to correct exactly
// this bias, which is why demonstrations help most on tasks where
// the model's prior threshold is off. The bias direction is drawn
// per model *family* (training lineage), so a same-family scale
// sweep isolates the effect of scale.
func (k *knowledge) thresholdBias(key string) float64 {
	scale := 0.03 + 0.12*k.card.KnowledgeNoise()
	return scale * gaussianFromHash(k.card.Family, "bias-"+key)
}
