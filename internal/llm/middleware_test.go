package llm

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCachedClientHitsAndUsage(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	c, err := NewCachedClient(inner, 10)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Prompt: classifyPrompt, Seed: 1}
	r1, err := c.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r2.Text {
		t.Error("cache returned different completion")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if u := c.Usage(); u.Calls != 1 {
		t.Errorf("usage calls = %d; cache hits must not be charged", u.Calls)
	}
}

func TestCachedClientKeySensitivity(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	c, _ := NewCachedClient(inner, 10)
	ctx := context.Background()
	_, _ = c.Complete(ctx, Request{Prompt: "p", Seed: 1})
	_, _ = c.Complete(ctx, Request{Prompt: "p", Seed: 2})                   // different seed
	_, _ = c.Complete(ctx, Request{Prompt: "p", Seed: 1, Temperature: 0.5}) // different temp
	if _, misses := c.Stats(); misses != 3 {
		t.Errorf("misses = %d, want 3 distinct keys", misses)
	}
}

func TestCachedClientLRUEviction(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	c, _ := NewCachedClient(inner, 2)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		_, _ = c.Complete(ctx, Request{Prompt: fmt.Sprintf("prompt %d", i), Seed: 1})
	}
	// Oldest (prompt 0) evicted; re-requesting it must miss.
	_, _ = c.Complete(ctx, Request{Prompt: "prompt 0", Seed: 1})
	if hits, misses := c.Stats(); hits != 0 || misses != 4 {
		t.Errorf("hits=%d misses=%d, want 0/4 after eviction", hits, misses)
	}
	// prompt 2 is still resident.
	_, _ = c.Complete(ctx, Request{Prompt: "prompt 2", Seed: 1})
	if hits, _ := c.Stats(); hits != 1 {
		t.Errorf("hits = %d, want 1 for resident entry", hits)
	}
}

func TestCachedClientConcurrent(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	c, _ := NewCachedClient(inner, 50)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := Request{Prompt: fmt.Sprintf("prompt %d", i%10), Seed: 1}
				if _, err := c.Complete(context.Background(), req); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses != 400 {
		t.Errorf("hits+misses = %d, want 400", hits+misses)
	}
	// Racing goroutines may duplicate a miss before the first store
	// lands (by design: the cache never blocks completions), but hits
	// must dominate with only 10 distinct keys.
	if hits < 300 {
		t.Errorf("hits = %d, expected the vast majority of 400", hits)
	}
	// After the run every key is resident: one more pass is all hits.
	hBefore, _ := c.Stats()
	for i := 0; i < 10; i++ {
		req := Request{Prompt: fmt.Sprintf("prompt %d", i), Seed: 1}
		if _, err := c.Complete(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	hAfter, mAfter := c.Stats()
	if hAfter-hBefore != 10 {
		t.Errorf("resident keys should all hit: %d hits, misses now %d", hAfter-hBefore, mAfter)
	}
}

func TestCachedClientValidation(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	if _, err := NewCachedClient(nil, 5); err == nil {
		t.Error("nil inner must error")
	}
	if _, err := NewCachedClient(inner, 0); err == nil {
		t.Error("zero capacity must error")
	}
	// Errors are not cached.
	c, _ := NewCachedClient(inner, 5)
	if _, err := c.Complete(context.Background(), Request{}); err == nil {
		t.Error("invalid request must propagate error")
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Error("failed request should count as miss but not be stored")
	}
}

func TestRateLimitedClientThrottles(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	// 50 rps, burst 1: 4 requests should take >= ~60ms.
	c, err := NewRateLimitedClient(inner, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := c.Complete(context.Background(), Request{Prompt: "p", Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("4 requests at 50rps burst 1 took only %v", elapsed)
	}
}

func TestRateLimitedClientBurst(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	c, err := NewRateLimitedClient(inner, 1, 5) // 1 rps but burst 5
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := c.Complete(context.Background(), Request{Prompt: "p", Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("burst of 5 should be immediate, took %v", elapsed)
	}
}

func TestRateLimitedClientContextCancel(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	c, err := NewRateLimitedClient(inner, 0.1, 1) // one slot per 10s
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Drain the single burst slot.
	if _, err := c.Complete(context.Background(), Request{Prompt: "p", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Complete(ctx, Request{Prompt: "p", Seed: 2}); err == nil {
		t.Error("blocked request must fail on context deadline")
	}
}

func TestRateLimitedClientValidation(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	if _, err := NewRateLimitedClient(nil, 1, 1); err == nil {
		t.Error("nil inner must error")
	}
	if _, err := NewRateLimitedClient(inner, 0, 1); err == nil {
		t.Error("zero rps must error")
	}
	c, _ := NewRateLimitedClient(inner, 10, 0) // burst floor of 1
	defer c.Close()
	if _, err := c.Complete(context.Background(), Request{Prompt: "p"}); err != nil {
		t.Errorf("burst floor broken: %v", err)
	}
	c.Close() // double Close must be safe
}

// flakyClient fails the first failures calls, then delegates.
type flakyClient struct {
	inner    Client
	failures int
	mu       sync.Mutex
	calls    int
}

func (f *flakyClient) Model() ModelCard { return f.inner.Model() }
func (f *flakyClient) Usage() Usage     { return f.inner.Usage() }
func (f *flakyClient) Complete(ctx context.Context, req Request) (Response, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.failures {
		return Response{}, fmt.Errorf("transient error %d", n)
	}
	return f.inner.Complete(ctx, req)
}

func TestRetryClientRecovers(t *testing.T) {
	flaky := &flakyClient{inner: MustSimClient(MustModel("gpt-3.5-sim")), failures: 2}
	c, err := NewRetryClient(flaky, 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Complete(context.Background(), Request{Prompt: classifyPrompt, Seed: 1})
	if err != nil {
		t.Fatalf("retry should recover: %v", err)
	}
	if resp.Text == "" {
		t.Error("empty completion after recovery")
	}
	if flaky.calls != 3 {
		t.Errorf("calls = %d, want 3 (2 failures + success)", flaky.calls)
	}
}

func TestRetryClientExhaustsAttempts(t *testing.T) {
	flaky := &flakyClient{inner: MustSimClient(MustModel("gpt-3.5-sim")), failures: 10}
	c, _ := NewRetryClient(flaky, 3, time.Millisecond)
	if _, err := c.Complete(context.Background(), Request{Prompt: "p", Seed: 1}); err == nil {
		t.Error("exhausted retries must fail")
	}
	if flaky.calls != 3 {
		t.Errorf("calls = %d, want exactly 3 attempts", flaky.calls)
	}
}

func TestRetryClientPermanentErrorFailsFast(t *testing.T) {
	flaky := &flakyClient{inner: MustSimClient(MustModel("gpt-3.5-sim")), failures: 0}
	c, _ := NewRetryClient(flaky, 5, time.Millisecond)
	if _, err := c.Complete(context.Background(), Request{}); err == nil {
		t.Error("invalid request must error")
	}
	if flaky.calls != 0 {
		t.Errorf("permanent error burned %d attempts", flaky.calls)
	}
}

func TestRetryClientBackoffGrows(t *testing.T) {
	flaky := &flakyClient{inner: MustSimClient(MustModel("gpt-3.5-sim")), failures: 3}
	c, _ := NewRetryClient(flaky, 4, 10*time.Millisecond)
	var waits []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		waits = append(waits, d)
		return nil
	}
	if _, err := c.Complete(context.Background(), Request{Prompt: "p", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 3 {
		t.Fatalf("waits = %v", waits)
	}
	if !(waits[0] < waits[1] && waits[1] < waits[2]) {
		t.Errorf("backoff not growing: %v", waits)
	}
}

func TestRetryClientContextCancelDuringBackoff(t *testing.T) {
	flaky := &flakyClient{inner: MustSimClient(MustModel("gpt-3.5-sim")), failures: 10}
	c, _ := NewRetryClient(flaky, 5, 50*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Complete(ctx, Request{Prompt: "p", Seed: 1}); err == nil {
		t.Error("cancelled backoff must abort")
	}
}

func TestRetryClientValidation(t *testing.T) {
	if _, err := NewRetryClient(nil, 3, time.Millisecond); err == nil {
		t.Error("nil inner must error")
	}
	inner := MustSimClient(MustModel("gpt-3.5-sim"))
	if _, err := NewRetryClient(inner, 0, time.Millisecond); err == nil {
		t.Error("zero attempts must error")
	}
}

func TestMiddlewareStacking(t *testing.T) {
	inner := MustSimClient(MustModel("gpt-4-sim"))
	cached, err := NewCachedClient(inner, 100)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := NewRateLimitedClient(cached, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer limited.Close()
	if limited.Model().Name != "gpt-4-sim" {
		t.Error("model identity lost through stack")
	}
	for i := 0; i < 5; i++ {
		if _, err := limited.Complete(context.Background(), Request{Prompt: classifyPrompt, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if hits, _ := cached.Stats(); hits != 4 {
		t.Errorf("hits = %d, want 4 through the stack", hits)
	}
}
