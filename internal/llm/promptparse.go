package llm

import (
	"strings"
)

// parsedPrompt is the simulated model's "understanding" of a
// classification prompt: the candidate labels, any few-shot
// exemplars, the query text, and style flags.
type parsedPrompt struct {
	labels    []string   // candidate label names, lowercase
	exemplars []exemplar // few-shot demonstrations in order
	query     string     // the text to classify
	cot       bool       // chain-of-thought requested
	topicHint string     // disorder/topic words found in instructions
	isTask    bool       // whether this parses as a classification task
}

type exemplar struct {
	text  string
	label string
}

// parsePrompt extracts classification structure from a prompt. The
// recognized shape is the one produced by the prompting package, but
// parsing is deliberately lenient: options may appear as
// "Options: a, b, c" or "Answer with one of: a | b | c"; exemplars
// are "Post:"/"Text:" blocks followed by "Label:"/"Answer:" lines;
// the query is the final Post/Text block with a trailing empty
// Label/Answer marker (or no marker at all).
func parsePrompt(system, prompt string) parsedPrompt {
	full := system + "\n" + prompt
	var p parsedPrompt

	lower := strings.ToLower(full)
	p.cot = strings.Contains(lower, "step by step") ||
		strings.Contains(lower, "step-by-step") ||
		strings.Contains(lower, "reasoning") ||
		strings.Contains(lower, "think through")

	p.topicHint = findTopicHint(lower)
	p.labels = findLabels(full)
	if len(p.labels) < 2 {
		return p // not a classification task
	}

	blocks := findBlocks(full)
	for _, b := range blocks {
		if b.label != "" {
			p.exemplars = append(p.exemplars, exemplar{text: b.text, label: strings.ToLower(b.label)})
		} else {
			p.query = b.text // last unlabeled block wins
		}
	}
	if p.query == "" && len(p.exemplars) > 0 {
		// Degenerate prompt: treat the final exemplar as the query.
		last := p.exemplars[len(p.exemplars)-1]
		p.exemplars = p.exemplars[:len(p.exemplars)-1]
		p.query = last.text
	}
	p.isTask = p.query != ""
	return p
}

// topic keywords the simulated model can ground severity tasks with.
var topicKeywords = []string{
	"suicide", "suicidal", "self-harm", "depression", "depressed",
	"anxiety", "anxious", "stress", "stressed", "ptsd", "trauma",
	"eating disorder", "anorexia", "bulimia", "bipolar", "mania",
	"mental health", "risk",
}

func findTopicHint(lower string) string {
	for _, kw := range topicKeywords {
		if strings.Contains(lower, kw) {
			return kw
		}
	}
	return ""
}

// findLabels locates the candidate label list.
func findLabels(full string) []string {
	markers := []string{"options:", "answer with one of:", "labels:", "classes:"}
	for _, line := range strings.Split(full, "\n") {
		trimmed := strings.TrimSpace(line)
		lowerLine := strings.ToLower(trimmed)
		rest := ""
		found := false
		for _, m := range markers {
			if idx := strings.Index(lowerLine, m); idx >= 0 {
				rest = trimmed[idx+len(m):]
				found = true
				break
			}
		}
		if !found {
			continue
		}
		seps := ","
		if strings.Contains(rest, "|") {
			seps = "|"
		}
		var labels []string
		for _, part := range strings.Split(rest, seps) {
			l := strings.ToLower(strings.TrimSpace(part))
			l = strings.Trim(l, `"'.`)
			if l != "" {
				labels = append(labels, l)
			}
		}
		if len(labels) >= 2 {
			return labels
		}
	}
	return nil
}

type block struct {
	text  string
	label string
}

// findBlocks extracts Post/Text blocks with their following
// Label/Answer values (empty label for the trailing query block).
func findBlocks(full string) []block {
	lines := strings.Split(full, "\n")
	var blocks []block
	var cur *block
	flush := func() {
		if cur != nil && strings.TrimSpace(cur.text) != "" {
			cur.text = strings.TrimSpace(cur.text)
			blocks = append(blocks, *cur)
		}
		cur = nil
	}
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		lower := strings.ToLower(trimmed)
		switch {
		case strings.HasPrefix(lower, "post:") || strings.HasPrefix(lower, "text:"):
			flush()
			idx := strings.Index(trimmed, ":")
			cur = &block{text: strings.TrimSpace(trimmed[idx+1:])}
		case strings.HasPrefix(lower, "label:") || strings.HasPrefix(lower, "answer:"):
			if cur != nil {
				idx := strings.Index(trimmed, ":")
				cur.label = strings.TrimSpace(trimmed[idx+1:])
				flush()
			}
		default:
			if cur != nil && trimmed != "" {
				cur.text += " " + trimmed
			}
		}
	}
	flush()
	return blocks
}
