package llm

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// fewShotPrompt builds a classification prompt with exemplars in the
// wire format the prompting package emits.
func fewShotPrompt(exemplars []string, labels []string, query string) string {
	var b strings.Builder
	b.WriteString("Classify the post for signs of depression.\n")
	fmt.Fprintf(&b, "Options: %s\n\n", strings.Join(labels, ", "))
	b.WriteString(strings.Join(exemplars, "\n"))
	if len(exemplars) > 0 {
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "Post: %s\nLabel:", query)
	return b.String()
}

var depExemplars = []string{
	"Post: i feel hopeless and worthless, crying every night\nLabel: depression\n",
	"Post: everything is pointless, no motivation, empty inside\nLabel: depression\n",
	"Post: fun weekend hiking with friends and a great dinner\nLabel: control\n",
	"Post: the new album is awesome, concert next week\nLabel: control\n",
}

func TestFewShotRecalibrationImprovesWeakModel(t *testing.T) {
	// A mid-size model on a borderline post: exemplars must raise the
	// rate of depression answers on a weak-signal depression query.
	query := "been feeling pretty low and drained lately, hard to focus on anything"
	labels := []string{"control", "depression"}
	count := func(prompt string) int {
		c := MustSimClient(MustModel("llama2-13b-sim"))
		n := 0
		for seed := int64(0); seed < 30; seed++ {
			r, err := c.Complete(context.Background(), Request{Prompt: prompt, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if strings.Contains(strings.ToLower(r.Text), "depression") {
				n++
			}
		}
		return n
	}
	zero := count(fewShotPrompt(nil, labels, query))
	few := count(fewShotPrompt(depExemplars, labels, query))
	if few < zero {
		t.Errorf("few-shot depression answers (%d/30) below zero-shot (%d/30)", few, zero)
	}
}

func TestFewShotOneSidedExemplarsStillComplete(t *testing.T) {
	// One-sided demonstration sets must not crash or force the
	// demonstrated label unconditionally.
	oneSided := depExemplars[:2] // depression only
	labels := []string{"control", "depression"}
	c := MustSimClient(MustModel("gpt-4-sim"))
	ctl := 0
	for seed := int64(0); seed < 20; seed++ {
		r, err := c.Complete(context.Background(), Request{
			Prompt: fewShotPrompt(oneSided, labels, "lovely barbecue with the family, the playoffs were great"),
			Seed:   seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(strings.ToLower(r.Text), "control") {
			ctl++
		}
	}
	if ctl < 12 {
		t.Errorf("obvious control post flipped by one-sided exemplars: %d/20 control answers", ctl)
	}
}

func TestFewShotUnknownExemplarLabelIgnored(t *testing.T) {
	weird := []string{"Post: some text here\nLabel: zebra\n"}
	c := MustSimClient(MustModel("gpt-3.5-sim"))
	_, err := c.Complete(context.Background(), Request{
		Prompt: fewShotPrompt(weird, []string{"control", "depression"}, "i feel hopeless"),
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSeverityPromptGrading(t *testing.T) {
	labels := []string{"none", "low", "moderate", "severe"}
	prompt := func(query string) string {
		return "Rate the level of suicide risk expressed by the author.\n" +
			"Options: " + strings.Join(labels, ", ") + "\n" +
			"Post: " + query + "\nLabel:"
	}
	c := MustSimClient(MustModel("gpt-4-sim"))
	answer := func(query string) string {
		counts := map[string]int{}
		for seed := int64(0); seed < 15; seed++ {
			r, err := c.Complete(context.Background(), Request{Prompt: prompt(query), Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			low := strings.ToLower(r.Text)
			for _, l := range labels {
				if strings.Contains(low, "label: "+l) {
					counts[l]++
				}
			}
		}
		best, bestN := "", 0
		for l, n := range counts {
			if n > bestN {
				best, bestN = l, n
			}
		}
		return best
	}
	calm := answer("made dinner with friends and watched a movie, great weekend")
	severe := answer("i want to die, i have a plan, goodbye everyone, better off dead, suicidal")
	if calm == "severe" || calm == "moderate" {
		t.Errorf("calm post graded %q", calm)
	}
	if severe == "none" || severe == "" {
		t.Errorf("explicit plan post graded %q", severe)
	}
}

func TestClinicalOnlyFilter(t *testing.T) {
	kept, n := clinicalOnly("i feel hopeless and worthless after dinner with friends")
	if n < 2 {
		t.Fatalf("expected clinical tokens, got %q (%d)", kept, n)
	}
	if !strings.Contains(kept, "hopeless") || !strings.Contains(kept, "worthless") {
		t.Errorf("kept = %q", kept)
	}
	if strings.Contains(kept, "dinner") || strings.Contains(kept, "friends") {
		t.Errorf("neutral words leaked into clinical filter: %q", kept)
	}
	_, n = clinicalOnly("sunny picnic with the team by the lake")
	if n != 0 {
		t.Errorf("neutral text should have 0 clinical tokens, got %d", n)
	}
}

func TestModelAccessor(t *testing.T) {
	c := MustSimClient(MustModel("gpt-4-sim"))
	if c.Model().Name != "gpt-4-sim" {
		t.Errorf("Model() = %q", c.Model().Name)
	}
}

func TestModelCardValidateErrors(t *testing.T) {
	cases := []ModelCard{
		{},                     // empty name
		{Name: "x"},            // zero params
		{Name: "x", Params: 1}, // zero throughput
		{Name: "x", Params: 1, TokensPerSec: 10, InputPricePerM: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, c)
		}
	}
	if _, err := NewSimClient(ModelCard{}); err == nil {
		t.Error("NewSimClient must reject invalid cards")
	}
}
