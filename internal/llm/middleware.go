package llm

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"
)

// CachedClient memoizes completions by full request identity
// (system, prompt, temperature, seed, max tokens) with an LRU
// eviction policy. Benchmark sweeps re-issue identical prompts
// constantly — zero-shot baselines across experiments, retries,
// bootstrap resamples — and a deterministic backend makes caching
// exact, not approximate. Cache hits are not charged to Usage.
type CachedClient struct {
	inner    Client
	capacity int

	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recent
	hits    int
	misses  int
}

type cacheKey struct {
	system      string
	prompt      string
	temperature float64
	seed        int64
	maxTokens   int
}

type cacheEntry struct {
	key  cacheKey
	resp Response
}

// NewCachedClient wraps inner with an LRU of the given capacity
// (entries; must be positive).
func NewCachedClient(inner Client, capacity int) (*CachedClient, error) {
	if inner == nil {
		return nil, fmt.Errorf("llm: nil inner client")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("llm: cache capacity %d must be positive", capacity)
	}
	return &CachedClient{
		inner:    inner,
		capacity: capacity,
		entries:  make(map[cacheKey]*list.Element, capacity),
		order:    list.New(),
	}, nil
}

// Model implements Client.
func (c *CachedClient) Model() ModelCard { return c.inner.Model() }

// Usage implements Client: it reports the inner client's usage, i.e.
// only cache misses cost tokens.
func (c *CachedClient) Usage() Usage { return c.inner.Usage() }

// Stats returns cache hit/miss counts.
func (c *CachedClient) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Complete implements Client.
func (c *CachedClient) Complete(ctx context.Context, req Request) (Response, error) {
	key := cacheKey{
		system:      req.System,
		prompt:      req.Prompt,
		temperature: req.Temperature,
		seed:        req.Seed,
		maxTokens:   req.MaxTokens,
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		resp := el.Value.(*cacheEntry).resp
		c.mu.Unlock()
		return resp, nil
	}
	c.misses++
	c.mu.Unlock()

	resp, err := c.inner.Complete(ctx, req)
	if err != nil {
		return Response{}, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Raced with another goroutine; keep the existing entry.
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).resp, nil
	}
	el := c.order.PushFront(&cacheEntry{key: key, resp: resp})
	c.entries[key] = el
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	return resp, nil
}

// RateLimitedClient bounds the request rate to the backend with a
// token bucket, the shape every hosted-LLM integration needs.
// Complete blocks until a slot is available or ctx is cancelled.
type RateLimitedClient struct {
	inner  Client
	bucket chan struct{}
	ticker *time.Ticker
	done   chan struct{}
	once   sync.Once
}

// NewRateLimitedClient wraps inner with a limit of rps requests per
// second and the given burst size.
func NewRateLimitedClient(inner Client, rps float64, burst int) (*RateLimitedClient, error) {
	if inner == nil {
		return nil, fmt.Errorf("llm: nil inner client")
	}
	if rps <= 0 {
		return nil, fmt.Errorf("llm: rps %v must be positive", rps)
	}
	if burst <= 0 {
		burst = 1
	}
	c := &RateLimitedClient{
		inner:  inner,
		bucket: make(chan struct{}, burst),
		ticker: time.NewTicker(time.Duration(float64(time.Second) / rps)),
		done:   make(chan struct{}),
	}
	for i := 0; i < burst; i++ {
		c.bucket <- struct{}{}
	}
	go func() {
		for {
			select {
			case <-c.ticker.C:
				select {
				case c.bucket <- struct{}{}:
				default: // bucket full
				}
			case <-c.done:
				return
			}
		}
	}()
	return c, nil
}

// Close stops the refill goroutine. The client must not be used
// after Close.
func (c *RateLimitedClient) Close() {
	c.once.Do(func() {
		c.ticker.Stop()
		close(c.done)
	})
}

// Model implements Client.
func (c *RateLimitedClient) Model() ModelCard { return c.inner.Model() }

// Usage implements Client.
func (c *RateLimitedClient) Usage() Usage { return c.inner.Usage() }

// Complete implements Client, blocking for a rate slot first.
func (c *RateLimitedClient) Complete(ctx context.Context, req Request) (Response, error) {
	select {
	case <-c.bucket:
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
	return c.inner.Complete(ctx, req)
}

// RetryClient retries failed completions with capped exponential
// backoff — transient provider errors (rate limits, 5xx) are a fact
// of life for hosted LLMs. Request-validation errors are permanent
// and not retried; context cancellation aborts immediately.
type RetryClient struct {
	inner    Client
	attempts int
	baseWait time.Duration
	// sleep is swapped out by tests; defaults to a context-aware wait.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewRetryClient wraps inner with up to attempts total tries and the
// given initial backoff (doubling each retry, capped at 30s).
func NewRetryClient(inner Client, attempts int, baseWait time.Duration) (*RetryClient, error) {
	if inner == nil {
		return nil, fmt.Errorf("llm: nil inner client")
	}
	if attempts < 1 {
		return nil, fmt.Errorf("llm: attempts %d must be >= 1", attempts)
	}
	if baseWait <= 0 {
		baseWait = 100 * time.Millisecond
	}
	return &RetryClient{
		inner:    inner,
		attempts: attempts,
		baseWait: baseWait,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}, nil
}

// Model implements Client.
func (c *RetryClient) Model() ModelCard { return c.inner.Model() }

// Usage implements Client.
func (c *RetryClient) Usage() Usage { return c.inner.Usage() }

// Complete implements Client with retries.
func (c *RetryClient) Complete(ctx context.Context, req Request) (Response, error) {
	// Permanent errors fail fast without burning attempts.
	if err := validateRequest(req); err != nil {
		return Response{}, err
	}
	wait := c.baseWait
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, wait); err != nil {
				return Response{}, err
			}
			wait *= 2
			if wait > 30*time.Second {
				wait = 30 * time.Second
			}
		}
		resp, err := c.inner.Complete(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
	}
	return Response{}, fmt.Errorf("llm: %d attempts failed: %w", c.attempts, lastErr)
}

// compile-time interface checks
var (
	_ Client = (*SimClient)(nil)
	_ Client = (*CachedClient)(nil)
	_ Client = (*RateLimitedClient)(nil)
	_ Client = (*RetryClient)(nil)
)
