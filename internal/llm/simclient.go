package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/domain"
	"repro/internal/embedding"
	"repro/internal/lexicon"
	"repro/internal/textkit"
)

// SimClient is the deterministic simulated-LLM implementation of
// Client. It is safe for concurrent use.
type SimClient struct {
	card  ModelCard
	know  *knowledge
	embed *embedding.Hasher
	meter usageMeter
}

// NewSimClient constructs a client for the given model card.
func NewSimClient(card ModelCard) (*SimClient, error) {
	if err := card.Validate(); err != nil {
		return nil, err
	}
	return &SimClient{
		card:  card,
		know:  newKnowledge(card),
		embed: embedding.NewHasher(256),
	}, nil
}

// MustSimClient is NewSimClient for catalog cards (panics on invalid
// cards, which is programmer error).
func MustSimClient(card ModelCard) *SimClient {
	c, err := NewSimClient(card)
	if err != nil {
		panic(err)
	}
	return c
}

// Model implements Client.
func (c *SimClient) Model() ModelCard { return c.card }

// Usage implements Client.
func (c *SimClient) Usage() Usage { return c.meter.snapshot() }

// Complete implements Client. The same request always yields the
// same response.
func (c *SimClient) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if err := validateRequest(req); err != nil {
		return Response{}, err
	}
	if req.MaxTokens == 0 {
		req.MaxTokens = 256
	}
	rng := c.requestRNG(req)

	parsed := parsePrompt(req.System, req.Prompt)
	var completion string
	if parsed.isTask {
		completion = c.completeTask(parsed, req, rng)
	} else {
		completion = c.completeGeneric(req, rng)
	}
	completion = truncateTokens(completion, req.MaxTokens)

	resp := account(c.card, req.System, req.Prompt, completion)
	c.meter.add(resp)
	return resp, nil
}

// requestRNG derives the per-request deterministic RNG.
func (c *SimClient) requestRNG(req Request) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(c.card.Name))
	h.Write([]byte{0})
	h.Write([]byte(req.System))
	h.Write([]byte{0})
	h.Write([]byte(req.Prompt))
	h.Write([]byte{0})
	fmt.Fprintf(h, "%d/%.4f", req.Seed, req.Temperature)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// completeTask runs the simulated classification decision and
// renders a completion in the model's voice.
func (c *SimClient) completeTask(p parsedPrompt, req Request, rng *rand.Rand) string {
	tokens := textkit.Words(textkit.Normalize(p.query))
	groundings := groundLabels(p.labels, p.topicHint)

	// Zero-shot evidence distribution.
	const tau = 0.25
	zero := make([]float64, len(p.labels))
	for i, g := range groundings {
		zero[i] = c.know.phi(g, tokens) / tau
	}
	pZero := softmaxCopy(zero)

	// Few-shot: nearest-centroid over the per-label evidence vectors
	// of the exemplars, blended with the zero-shot distribution. The
	// blend weight grows with the exemplar count and the model's
	// instruction-following quality.
	probs := pZero
	if len(p.exemplars) > 0 {
		probs = c.blendFewShot(p, groundings, tokens, pZero)
	}

	// Noisy decision. Demonstrations reduce decision variance (they
	// pin down the task format and boundary), on top of shifting the
	// probabilities via blendFewShot.
	sigma := c.card.DecisionNoise() * (0.75 + 0.5*req.Temperature)
	sigma /= 1 + 0.06*float64(len(p.exemplars))
	if p.cot {
		sigma *= c.card.CoTNoiseMult()
	}
	best, bestV := 0, math.Inf(-1)
	for i, pr := range probs {
		v := math.Log(pr+1e-9) + sigma*rng.NormFloat64()
		if v > bestV {
			best, bestV = i, v
		}
	}
	label := p.labels[best]

	// Verbalized confidence with the replicated overconfidence
	// distortion (milder for stronger models).
	exp := 0.8 - 0.45*(1-c.card.InstructionFollow())
	if exp < 0.3 {
		exp = 0.3
	}
	conf := math.Pow(probs[best], exp)
	if conf > 0.99 {
		conf = 0.99
	}

	// Format failures.
	pErr := c.card.FormatErrorRate() + 0.05*req.Temperature
	if rng.Float64() < pErr {
		return c.malformed(rng, label)
	}

	if p.cot {
		return c.cotCompletion(p, groundings[best], tokens, label, conf)
	}
	return fmt.Sprintf("Label: %s\nConfidence: %.2f", label, conf)
}

// blendFewShot mixes the zero-shot distribution with a
// nearest-centroid distribution computed from the exemplars.
func (c *SimClient) blendFewShot(p parsedPrompt, groundings []labelGrounding, tokens []string, pZero []float64) []float64 {
	L := len(p.labels)
	labelIdx := make(map[string]int, L)
	for i, l := range p.labels {
		labelIdx[l] = i
	}
	// Evidence vector of a text: phi under every label grounding.
	phiVec := func(toks []string) []float64 {
		v := make([]float64, L)
		for i, g := range groundings {
			v[i] = c.know.phi(g, toks)
		}
		return v
	}
	// Exemplar-based threshold recalibration: for each label, the
	// exemplars estimate the typical phi value when the label is
	// correct ("on") and when it is not ("off"); the recalibrated
	// evidence is the query's normalized margin past the on/off
	// midpoint. This is what demonstrations buy a real LLM: they
	// pin down where the decision boundary sits for *this* dataset,
	// correcting the model's generic threshold bias.
	onSum := make([]float64, L)
	onN := make([]int, L)
	offSum := make([]float64, L)
	offN := make([]int, L)
	for _, ex := range p.exemplars {
		li, ok := labelIdx[ex.label]
		if !ok {
			continue // exemplar with an unknown label: the model ignores it
		}
		v := phiVec(textkit.Words(textkit.Normalize(ex.text)))
		for j := range v {
			if j == li {
				onSum[j] += v[j]
				onN[j]++
			} else {
				offSum[j] += v[j]
				offN[j]++
			}
		}
	}
	q := phiVec(tokens)
	margins := make([]float64, 0, L)
	idxs := make([]int, 0, L)
	for li := 0; li < L; li++ {
		if onN[li] == 0 || offN[li] == 0 {
			continue
		}
		on := onSum[li] / float64(onN[li])
		off := offSum[li] / float64(offN[li])
		spread := on - off
		if spread < 1e-6 {
			continue // exemplars don't separate this label
		}
		mid := (on + off) / 2
		margins = append(margins, (q[li]-mid)/spread)
		idxs = append(idxs, li)
	}
	// Redistribute the zero-shot mass of recalibrated labels by the
	// exemplar-derived distribution; other labels keep their
	// zero-shot mass. With one-sided exemplar sets (every
	// demonstration from one class) no label can be recalibrated and
	// pFew degenerates to pZero — the similarity vote below is then
	// the only exemplar signal, as with retrieval-based selection.
	pFew := make([]float64, L)
	copy(pFew, pZero)
	if len(idxs) > 0 {
		const sharpness = 3.0
		for i := range margins {
			margins[i] *= sharpness
		}
		qDist := softmaxCopy(margins)
		mass := 0.0
		for _, li := range idxs {
			mass += pZero[li]
		}
		for i, li := range idxs {
			pFew[li] = qDist[i] * mass
		}
	}

	// Demonstration copying: in-context learners imitate the labels
	// of demonstrations that closely resemble the query, which is
	// the mechanism that makes retrieval-based exemplar selection
	// outperform static random exemplars. Votes are cubed cosine
	// similarities, so only genuinely close neighbours matter.
	pSim, simStrength := c.similarityVote(p, labelIdx, L)

	k := float64(len(p.exemplars))
	alpha := 0.55 * c.card.InstructionFollow() * k / (k + 4)
	beta := alpha * simStrength
	out := make([]float64, L)
	for i := range out {
		out[i] = (1-alpha-beta)*pZero[i] + alpha*pFew[i] + beta*pSim[i]
	}
	return out
}

// similarityVote returns a label distribution from
// similarity-weighted exemplar votes plus a strength in [0, 0.9]
// reflecting how close the best neighbours are. Similarity is
// computed over clinically salient tokens only — the simulated
// attention a capable model pays to symptom language rather than to
// incidental filler content — so near-duplicate demonstrations of
// the right label dominate the vote.
func (c *SimClient) similarityVote(p parsedPrompt, labelIdx map[string]int, L int) ([]float64, float64) {
	qClin, qClinN := clinicalOnly(p.query)
	qvClin := c.embed.Embed(qClin)
	qvFull := c.embed.Embed(p.query)
	votes := make([]float64, L)
	total := 0.0
	maxSim := 0.0
	for _, ex := range p.exemplars {
		li, ok := labelIdx[ex.label]
		if !ok {
			continue
		}
		// Clinical-token similarity when both sides carry symptom
		// language; full-text similarity when neither does (so
		// control-class demonstrations still vote for control-like
		// queries); and a penalized similarity across the
		// clinical/non-clinical divide, because sharing filler
		// content while disagreeing on symptom language is evidence
		// of a *different* label.
		eClin, eClinN := clinicalOnly(ex.text)
		var sim float64
		switch {
		case qClinN >= 2 && eClinN >= 2:
			sim = embedding.Cosine(qvClin, c.embed.Embed(eClin))
		case qClinN < 2 && eClinN < 2:
			sim = embedding.Cosine(qvFull, c.embed.Embed(ex.text))
		default:
			sim = 0.3 * embedding.Cosine(qvFull, c.embed.Embed(ex.text))
		}
		if sim > maxSim {
			maxSim = sim
		}
		if sim <= 0.05 {
			continue
		}
		w := sim * sim * sim
		votes[li] += w
		total += w
	}
	if total == 0 {
		uniform := make([]float64, L)
		for i := range uniform {
			uniform[i] = 1 / float64(L)
		}
		return uniform, 0
	}
	for i := range votes {
		votes[i] /= total
	}
	strength := maxSim * 2
	if strength > 0.9 {
		strength = 0.9
	}
	return votes, strength
}

// cotCompletion renders a chain-of-thought answer citing the lexical
// cues the model grounded its decision in.
func (c *SimClient) cotCompletion(p parsedPrompt, g labelGrounding, tokens []string, label string, conf float64) string {
	var cues []string
	if g.known {
		cues = c.know.lexFor(g.disorder).Hits(tokens)
	}
	if len(cues) > 3 {
		cues = cues[:3]
	}
	var b strings.Builder
	b.WriteString("Reasoning: let me think step by step. ")
	if len(cues) > 0 {
		b.WriteString("The post mentions ")
		for i, cue := range cues {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q", cue)
		}
		b.WriteString(". ")
	} else {
		b.WriteString("The post shows no strong clinical markers. ")
	}
	fmt.Fprintf(&b, "Taken together these cues point to %s.\n", label)
	fmt.Fprintf(&b, "Label: %s\nConfidence: %.2f", label, conf)
	return b.String()
}

// malformed renders the format-failure modes: refusals and hedges
// (unparseable) and verbose-but-recoverable answers.
func (c *SimClient) malformed(rng *rand.Rand, label string) string {
	switch rng.Intn(3) {
	case 0:
		return "I'm sorry, but I can't provide a clinical diagnosis. " +
			"If you or someone you know is struggling, please reach out " +
			"to a qualified mental health professional or a crisis line."
	case 1:
		return "This post is concerning and could reflect several different " +
			"things going on. It's hard to say definitively without much " +
			"more context about the person's situation."
	default:
		return fmt.Sprintf("Based on the content, the answer is probably %s. "+
			"However, note that only a professional evaluation can make "+
			"an actual determination.", label)
	}
}

// completeGeneric answers prompts that don't parse as a
// classification task: an opener plus background-LM filler whose
// length scales mildly with model size (bigger models ramble more
// fluently, in this simulation as in life).
func (c *SimClient) completeGeneric(req Request, rng *rand.Rand) string {
	openers := []string{
		"Here is a concise response to your request.",
		"Sure — here is what I can offer on that.",
		"Here are the key points to consider.",
	}
	nTokens := 10 + int(6*c.card.logP()) + rng.Intn(8)
	if nTokens < 8 {
		nTokens = 8
	}
	filler := backgroundLM.Generate(nTokens, rng)
	return openers[rng.Intn(len(openers))] + " " + filler +
		". (This simulated model only performs structured classification in full fidelity.)"
}

// clinicalVocab is the union of all disorder-lexicon words (with
// multiword phrases exploded), used to restrict similarity voting to
// symptom language.
var (
	clinicalVocabOnce sync.Once
	clinicalVocab     map[string]bool
)

var pronounLike = map[string]bool{
	"myself": true, "dont": true, "don't": true, "cant": true,
	"can't": true, "wont": true, "won't": true, "everyone": true,
	"everything": true, "nothing": true, "anymore": true,
	"without": true, "would": true, "better": true, "forever": true,
}

func clinicalOnly(text string) (string, int) {
	clinicalVocabOnce.Do(func() {
		clinicalVocab = map[string]bool{}
		for _, d := range domain.ClinicalDisorders() {
			for _, e := range lexicon.MustForDisorder(d).Entries() {
				if e.Weight < 0.45 {
					continue // too generic to count as symptom language
				}
				for _, w := range strings.Fields(e.Term) {
					// Function words from exploded phrases ("wish i
					// was dead") must not qualify whole posts.
					if len(w) < 4 || textkit.IsStopword(w) || pronounLike[w] {
						continue
					}
					clinicalVocab[w] = true
				}
			}
		}
	})
	toks := textkit.Words(textkit.Normalize(text))
	kept := toks[:0]
	for _, t := range toks {
		if clinicalVocab[t] {
			kept = append(kept, t)
		}
	}
	return strings.Join(kept, " "), len(kept)
}

func softmaxCopy(logits []float64) []float64 {
	out := make([]float64, len(logits))
	copy(out, logits)
	if len(out) == 0 {
		return out
	}
	maxL := out[0]
	for _, l := range out[1:] {
		if l > maxL {
			maxL = l
		}
	}
	sum := 0.0
	for i, l := range out {
		out[i] = math.Exp(l - maxL)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// truncateTokens caps a completion at roughly maxTokens tokens by
// cutting at word boundaries.
func truncateTokens(s string, maxTokens int) string {
	if maxTokens <= 0 {
		return s
	}
	words := strings.Fields(s)
	// CountTokens inflates by ~1.3x; invert conservatively.
	maxWords := maxTokens * 10 / 13
	if maxWords < 1 {
		maxWords = 1
	}
	if len(words) <= maxWords {
		return s
	}
	return strings.Join(words[:maxWords], " ")
}
