package llm

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

func ctxBG() context.Context { return context.Background() }

func TestNgramLMTrainAndGenerate(t *testing.T) {
	lm := trainNgramLM([]string{
		"the cat sat on the mat",
		"the dog sat on the rug",
	})
	rng := rand.New(rand.NewSource(1))
	out := lm.Generate(12, rng)
	if out == "" {
		t.Fatal("no text generated")
	}
	// Every token must come from the training vocabulary.
	vocab := map[string]bool{"the": true, "cat": true, "dog": true,
		"sat": true, "on": true, "mat": true, "rug": true}
	for _, tok := range strings.Fields(out) {
		if !vocab[tok] {
			t.Errorf("out-of-vocabulary token %q in %q", tok, out)
		}
	}
	// Bigram structure: "sat" is always followed by "on" in training.
	if strings.Contains(out, "sat") && !strings.Contains(out, "sat on") {
		t.Errorf("bigram structure violated: %q", out)
	}
}

func TestNgramLMDeterministicUnderSeed(t *testing.T) {
	lm := trainNgramLM(lmCorpus)
	a := lm.Generate(20, rand.New(rand.NewSource(7)))
	b := lm.Generate(20, rand.New(rand.NewSource(7)))
	if a != b {
		t.Error("generation not deterministic under seed")
	}
	c := lm.Generate(20, rand.New(rand.NewSource(8)))
	if a == c {
		t.Error("different seeds should usually differ")
	}
}

func TestNgramLMEmptyAndBounds(t *testing.T) {
	empty := trainNgramLM(nil)
	if got := empty.Generate(10, rand.New(rand.NewSource(1))); got != "" {
		t.Errorf("empty LM generated %q", got)
	}
	lm := trainNgramLM(lmCorpus)
	if got := lm.Generate(0, rand.New(rand.NewSource(1))); got != "" {
		t.Errorf("n=0 generated %q", got)
	}
	out := lm.Generate(5, rand.New(rand.NewSource(1)))
	if n := len(strings.Fields(out)); n > 5 {
		t.Errorf("generated %d tokens, cap was 5", n)
	}
}

func TestGenericCompletionUsesLM(t *testing.T) {
	c := MustSimClient(MustModel("gpt-4-sim"))
	r, err := c.Complete(ctxBG(), Request{Prompt: "tell me about the weather", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Fields(r.Text)) < 12 {
		t.Errorf("generic completion suspiciously short: %q", r.Text)
	}
	// Deterministic.
	r2, _ := c.Complete(ctxBG(), Request{Prompt: "tell me about the weather", Seed: 2})
	if r.Text != r2.Text {
		t.Error("generic completion not deterministic")
	}
}
