// Package llm implements the simulated large-language-model
// substrate.
//
// Real LLM APIs cannot ship inside an offline, stdlib-only
// reproduction, so this package provides a deterministic simulacrum
// that preserves the *relative* behaviours the survey's comparisons
// rest on:
//
//   - capability scales with parameter count: instruction-following
//     reliability rises and decision noise falls with log-parameters;
//   - few-shot exemplars sharpen the decision boundary, with gains
//     that grow (sub-linearly) in the number of exemplars;
//   - chain-of-thought helps only above a scale threshold and hurts
//     small models (the emergence effect);
//   - outputs are imperfect: small or hot models produce hedging,
//     refusals, or free-form answers that exercise output parsers;
//   - token usage, latency, and dollar cost are accounted per call.
//
// The "knowledge" behind the simulacrum is a per-model noised copy
// of the package lexicon's disorder vocabularies: the noise makes
// the model's prior weighting differ from any one dataset's
// generating distribution, which is exactly why fine-tuned in-domain
// baselines beat zero-shot prompting in the literature.
//
// Everything is deterministic given (model, request seed, prompt).
package llm

import (
	"fmt"
	"math"
	"sort"
)

// ModelCard describes one simulated model.
type ModelCard struct {
	Name   string  // unique id, e.g. "gpt-4-sim"
	Family string  // "gpt", "llama", "mistral", "flan"
	Params float64 // billions of parameters

	// Pricing in dollars per 1M tokens (simulated, fixed).
	InputPricePerM  float64
	OutputPricePerM float64
	// TokensPerSec is the simulated decode throughput.
	TokensPerSec float64

	// QualityBias shifts instruction-following quality relative to
	// pure scale (instruction-tuned families are better than base
	// families at equal size). Range roughly [-0.5, +0.5].
	QualityBias float64
}

// logP returns log10(params in billions), the scale coordinate all
// capability curves are driven by.
func (c ModelCard) logP() float64 {
	p := c.Params
	if p < 0.01 {
		p = 0.01
	}
	return math.Log10(p)
}

// InstructionFollow returns the probability in (0,1) that the model
// follows the output-format instruction on a given call.
func (c ModelCard) InstructionFollow() float64 {
	return sigmoid(1.8*(c.logP()-0.3) + c.QualityBias)
}

// DecisionNoise returns the standard deviation of the evidence noise
// applied to label scores. It decays exponentially with scale.
func (c ModelCard) DecisionNoise() float64 {
	return 2.2 * math.Exp(-0.55*(c.logP()+1))
}

// KnowledgeNoise returns the per-term multiplicative distortion of
// the model's lexicon knowledge relative to the canonical weights.
func (c ModelCard) KnowledgeNoise() float64 {
	return 0.9 * math.Exp(-0.4*(c.logP()+1))
}

// CoTNoiseMult returns the factor applied to decision noise under
// chain-of-thought prompting. Values above 1 mean CoT *hurts* —
// which it does below the emergence threshold (~30B parameters),
// reproducing the emergent-ability shape.
func (c ModelCard) CoTNoiseMult() float64 {
	m := 1.45 - 0.3*c.logP() - 0.1*c.QualityBias
	if m < 0.55 {
		m = 0.55
	}
	if m > 1.6 {
		m = 1.6
	}
	return m
}

// FormatErrorRate returns the base probability that a completion
// fails to present a cleanly parseable label, before the temperature
// contribution added at call time.
func (c ModelCard) FormatErrorRate() float64 {
	return 0.55 * (1 - c.InstructionFollow())
}

// Validate checks card sanity.
func (c ModelCard) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("llm: model card with empty name")
	}
	if c.Params <= 0 {
		return fmt.Errorf("llm: model %s has non-positive params %v", c.Name, c.Params)
	}
	if c.TokensPerSec <= 0 {
		return fmt.Errorf("llm: model %s has non-positive throughput", c.Name)
	}
	if c.InputPricePerM < 0 || c.OutputPricePerM < 0 {
		return fmt.Errorf("llm: model %s has negative pricing", c.Name)
	}
	return nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Catalog returns the built-in model cards, mirroring the model
// families the survey evaluates (GPT-3.5/4-class closed models and
// LLaMA/Mistral/Flan-class open models).
func Catalog() []ModelCard {
	return []ModelCard{
		{Name: "tiny-1b-sim", Family: "llama", Params: 1,
			InputPricePerM: 0.04, OutputPricePerM: 0.06, TokensPerSec: 220, QualityBias: -0.2},
		{Name: "llama2-7b-sim", Family: "llama", Params: 7,
			InputPricePerM: 0.10, OutputPricePerM: 0.20, TokensPerSec: 140, QualityBias: 0},
		{Name: "llama2-13b-sim", Family: "llama", Params: 13,
			InputPricePerM: 0.18, OutputPricePerM: 0.30, TokensPerSec: 110, QualityBias: 0},
		{Name: "mistral-7b-sim", Family: "mistral", Params: 7,
			InputPricePerM: 0.10, OutputPricePerM: 0.20, TokensPerSec: 150, QualityBias: 0.35},
		{Name: "flan-t5-11b-sim", Family: "flan", Params: 11,
			InputPricePerM: 0.15, OutputPricePerM: 0.25, TokensPerSec: 120, QualityBias: 0.25},
		{Name: "llama2-70b-sim", Family: "llama", Params: 70,
			InputPricePerM: 0.65, OutputPricePerM: 0.90, TokensPerSec: 55, QualityBias: 0.1},
		{Name: "gpt-3.5-sim", Family: "gpt", Params: 175,
			InputPricePerM: 0.50, OutputPricePerM: 1.50, TokensPerSec: 90, QualityBias: 0.3},
		{Name: "gpt-4-sim", Family: "gpt", Params: 1000,
			InputPricePerM: 10.0, OutputPricePerM: 30.0, TokensPerSec: 35, QualityBias: 0.5},
	}
}

// LookupModel returns the catalog card with the given name.
func LookupModel(name string) (ModelCard, error) {
	for _, c := range Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	return ModelCard{}, fmt.Errorf("llm: unknown model %q (have %v)", name, CatalogNames())
}

// MustModel is LookupModel for static references; it panics on
// unknown names.
func MustModel(name string) ModelCard {
	c, err := LookupModel(name)
	if err != nil {
		panic(err)
	}
	return c
}

// CatalogNames returns the sorted model names.
func CatalogNames() []string {
	cards := Catalog()
	names := make([]string, len(cards))
	for i, c := range cards {
		names[i] = c.Name
	}
	sort.Strings(names)
	return names
}

// ScaleSweep returns synthetic cards spanning the given parameter
// counts (in billions), for scale-curve experiments. All sweep
// models share family "sweep" and neutral quality bias.
func ScaleSweep(paramsB []float64) []ModelCard {
	out := make([]ModelCard, 0, len(paramsB))
	for _, p := range paramsB {
		out = append(out, ModelCard{
			Name:            fmt.Sprintf("sweep-%gb", p),
			Family:          "sweep",
			Params:          p,
			InputPricePerM:  0.05 * math.Pow(p, 0.7),
			OutputPricePerM: 0.15 * math.Pow(p, 0.7),
			TokensPerSec:    math.Max(20, 250/math.Pow(p, 0.35)),
		})
	}
	return out
}
