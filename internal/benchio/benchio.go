// Package benchio is the shared writer for the BENCH_*.json
// perf-trajectory files the benchmarks record at the repo root and
// internal/benchcheck validates in CI. Keeping the root-finding and
// encoding in one place means the file convention cannot drift
// between benchmarks.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// RepoRoot walks up from the working directory to the go.mod.
func RepoRoot() (string, bool) {
	dir, err := os.Getwd()
	if err != nil {
		return "", false
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}

// Write marshals doc (indented, trailing newline) to <repo
// root>/<name> and returns the path written. Callers treat failure
// as best-effort — benchmarks must not fail on read-only checkouts —
// but should log the error so CI output shows the write was skipped.
func Write(name string, doc map[string]any) (string, error) {
	root, ok := RepoRoot()
	if !ok {
		return "", fmt.Errorf("benchio: repo root not found from working directory")
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(root, name)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Read decodes <repo root>/<name> previously written by Write, so a
// benchmark can merge new keys into a trajectory file another
// benchmark in the same run started (e.g. the tracing-overhead figure
// joining the serving throughput record).
func Read(name string) (map[string]any, error) {
	root, ok := RepoRoot()
	if !ok {
		return nil, fmt.Errorf("benchio: repo root not found from working directory")
	}
	buf, err := os.ReadFile(filepath.Join(root, name))
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("benchio: %s: %w", name, err)
	}
	return doc, nil
}
