package benchio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRepoRootFindsGoMod(t *testing.T) {
	root, ok := RepoRoot()
	if !ok {
		t.Fatal("repo root not found from package directory")
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("reported root %s has no go.mod: %v", root, err)
	}
}

func TestWriteRoundTrips(t *testing.T) {
	const name = "BENCH_benchio_test.json"
	path, err := Write(name, map[string]any{"benchmark": "T", "x_per_sec": 1.5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Remove(path) })
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["benchmark"] != "T" || doc["x_per_sec"] != 1.5 {
		t.Errorf("round trip = %v", doc)
	}
	if buf[len(buf)-1] != '\n' {
		t.Error("missing trailing newline")
	}

	got, err := Read(name)
	if err != nil {
		t.Fatal(err)
	}
	if got["benchmark"] != "T" || got["x_per_sec"] != 1.5 {
		t.Errorf("Read = %v", got)
	}
	if _, err := Read("BENCH_benchio_absent.json"); err == nil {
		t.Error("Read of a missing file did not error")
	}
}
