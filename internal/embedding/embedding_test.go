package embedding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCosineBasics(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{1, 0}
	c := Vector{0, 1}
	d := Vector{-1, 0}
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical cosine = %v", got)
	}
	if got := Cosine(a, c); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := Cosine(a, d); math.Abs(got+1) > 1e-12 {
		t.Errorf("opposite cosine = %v", got)
	}
	if Cosine(a, Vector{0, 0}) != 0 {
		t.Error("zero vector cosine must be 0")
	}
	if Cosine(a, Vector{1}) != 0 {
		t.Error("length mismatch cosine must be 0")
	}
}

func TestCosineBoundedProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		av, bv := make(Vector, n), make(Vector, n)
		for i := 0; i < n; i++ {
			// Bound magnitudes so the test exercises geometry, not
			// float64 overflow.
			av[i] = math.Remainder(a[i], 1e6)
			bv[i] = math.Remainder(b[i], 1e6)
			if math.IsNaN(av[i]) {
				av[i] = 0
			}
			if math.IsNaN(bv[i]) {
				bv[i] = 0
			}
		}
		c := Cosine(av, bv)
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-12 {
		t.Errorf("norm after normalize = %v", v.Norm())
	}
	z := Vector{0, 0}
	z.Normalize() // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector normalize should be no-op")
	}
}

func TestHasherDeterministicAndUnit(t *testing.T) {
	h := NewHasher(64)
	a := h.Embed("i feel hopeless and empty today")
	b := h.Embed("i feel hopeless and empty today")
	if Cosine(a, b) < 1-1e-9 {
		t.Error("hashing not deterministic")
	}
	if math.Abs(a.Norm()-1) > 1e-9 {
		t.Errorf("embedding not unit-norm: %v", a.Norm())
	}
}

func TestHasherSimilarityOrdering(t *testing.T) {
	h := NewHasher(256)
	q := h.Embed("i feel hopeless and worthless, crying every night")
	sim := h.Embed("feeling worthless and hopeless, cried all night")
	diff := h.Embed("great barbecue with friends, the playoffs were fun")
	if Cosine(q, sim) <= Cosine(q, diff) {
		t.Errorf("similar text (%v) should beat different text (%v)",
			Cosine(q, sim), Cosine(q, diff))
	}
}

func TestHasherMinDim(t *testing.T) {
	h := NewHasher(1)
	if h.Dim() != 8 {
		t.Errorf("dim = %d, want floor of 8", h.Dim())
	}
}

func TestHasherEmptyText(t *testing.T) {
	h := NewHasher(32)
	v := h.Embed("")
	if v.Norm() != 0 {
		t.Error("empty text should embed to zero vector")
	}
	if len(v) != 32 {
		t.Errorf("len = %d", len(v))
	}
}

var wvCorpus = []string{
	"i feel hopeless and empty, crying all night, depression is heavy",
	"hopeless nights crying alone, the depression and emptiness won't stop",
	"panic attack again today, anxiety and worry racing heart",
	"anxiety spiking, panic and worry all day, racing thoughts",
	"made dinner with friends, great movie and fun games",
	"weekend hiking with friends, dinner and a movie after",
	"depression makes everything heavy, feeling empty and hopeless",
	"the panic and anxiety and worry make my heart race",
}

func TestTrainWordVectorsBasics(t *testing.T) {
	wv := TrainWordVectors(wvCorpus, 32, 3, 2, 7)
	if wv.Len() == 0 {
		t.Fatal("no vectors learned")
	}
	if wv.Dim() != 32 {
		t.Errorf("dim = %d", wv.Dim())
	}
	if _, ok := wv.Word("hopeless"); !ok {
		t.Error("frequent word missing from vocab")
	}
	if _, ok := wv.Word("zzzznotaword"); ok {
		t.Error("unknown word should be out of vocab")
	}
}

func TestWordVectorsDistributionalSimilarity(t *testing.T) {
	wv := TrainWordVectors(wvCorpus, 64, 3, 2, 7)
	hv, ok1 := wv.Word("hopeless")
	ev, ok2 := wv.Word("empty")
	pv, ok3 := wv.Word("panic")
	if !ok1 || !ok2 || !ok3 {
		t.Skip("vocabulary too small for the similarity check")
	}
	if Cosine(hv, ev) <= Cosine(hv, pv) {
		t.Errorf("hopeless~empty (%v) should beat hopeless~panic (%v)",
			Cosine(hv, ev), Cosine(hv, pv))
	}
}

func TestWordVectorsDeterministic(t *testing.T) {
	wv1 := TrainWordVectors(wvCorpus, 32, 3, 2, 7)
	wv2 := TrainWordVectors(wvCorpus, 32, 3, 2, 7)
	v1, _ := wv1.Word("depression")
	v2, _ := wv2.Word("depression")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("word vectors not deterministic")
		}
	}
}

func TestWordVectorsDoc(t *testing.T) {
	wv := TrainWordVectors(wvCorpus, 64, 3, 2, 7)
	clinical := wv.Doc("feeling hopeless and empty with depression")
	similar := wv.Doc("depression and hopeless emptiness")
	neutral := wv.Doc("dinner and a movie with friends")
	if Cosine(clinical, similar) <= Cosine(clinical, neutral) {
		t.Errorf("doc similarity ordering wrong: %v vs %v",
			Cosine(clinical, similar), Cosine(clinical, neutral))
	}
	oov := wv.Doc("zzz qqq xxx")
	if oov.Norm() != 0 {
		t.Error("fully OOV doc should embed to zero")
	}
}

func TestNearestDeterministic(t *testing.T) {
	wv := TrainWordVectors(wvCorpus, 64, 3, 2, 7)
	a := wv.Nearest("anxiety", 3)
	b := wv.Nearest("anxiety", 3)
	if len(a) != 3 {
		t.Skipf("vocab too small: %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Nearest not deterministic")
		}
	}
	if wv.Nearest("notaword", 3) != nil {
		t.Error("Nearest of OOV should be nil")
	}
	if wv.Nearest("anxiety", 0) != nil {
		t.Error("Nearest k=0 should be nil")
	}
}

func TestTrainWordVectorsEmptyCorpus(t *testing.T) {
	wv := TrainWordVectors(nil, 16, 2, 1, 1)
	if wv.Len() != 0 {
		t.Error("empty corpus should produce empty vocab")
	}
	v := wv.Doc("anything")
	if v.Norm() != 0 {
		t.Error("doc from empty model should be zero")
	}
}
