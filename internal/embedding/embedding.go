// Package embedding provides dense text representations built from
// scratch on the stdlib: a feature-hashing document vectorizer (the
// fast path used by the neural baseline and exemplar retrieval) and
// count-based PPMI word vectors compressed by seeded random
// projection (a word2vec-class representation without training a
// network).
package embedding

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"repro/internal/textkit"
)

// Vector is a dense embedding.
type Vector []float64

// Cosine returns the cosine similarity of a and b (0 when either is
// a zero vector or lengths differ).
func Cosine(a, b Vector) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Norm returns the L2 norm.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize scales v to unit L2 norm in place (no-op on zero
// vectors) and returns it.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= n
	}
	return v
}

// Hasher embeds documents by the feature-hashing trick: token counts
// (unigrams + bigrams, stemmed, stopword-filtered) are hashed into a
// fixed-dimension signed vector, then L2-normalized. Stateless and
// training-free, so it works at any data size.
type Hasher struct {
	dim int
}

// NewHasher returns a hasher with the given dimensionality.
// Dimensions below 8 are raised to 8.
func NewHasher(dim int) *Hasher {
	if dim < 8 {
		dim = 8
	}
	return &Hasher{dim: dim}
}

// Dim returns the embedding dimensionality.
func (h *Hasher) Dim() int { return h.dim }

// Embed maps text to its hashed embedding.
func (h *Hasher) Embed(text string) Vector {
	v := make(Vector, h.dim)
	toks := textkit.RemoveStopwords(textkit.Words(textkit.Normalize(text)))
	toks = textkit.StemAll(toks)
	for _, f := range textkit.UniBigrams(toks) {
		idx, sign := hashFeature(f, h.dim)
		v[idx] += sign
	}
	return v.Normalize()
}

// hashFeature maps a feature string to (index, ±1). A second hash
// bit picks the sign, which keeps hashed inner products unbiased.
func hashFeature(f string, dim int) (int, float64) {
	hs := fnv.New64a()
	hs.Write([]byte(f))
	sum := hs.Sum64()
	idx := int(sum % uint64(dim))
	sign := 1.0
	if (sum>>63)&1 == 1 {
		sign = -1
	}
	return idx, sign
}

// WordVectors are count-based distributional word embeddings:
// a positive-PMI co-occurrence matrix compressed to dim dimensions
// with a seeded sparse random projection.
type WordVectors struct {
	dim  int
	vecs map[string]Vector
}

// TrainWordVectors builds word vectors from a corpus. window is the
// symmetric co-occurrence window in tokens; minCount drops rare
// words. Deterministic under seed.
func TrainWordVectors(corpus []string, dim, window, minCount int, seed int64) *WordVectors {
	if dim < 4 {
		dim = 4
	}
	if window < 1 {
		window = 1
	}
	// Pass 1: vocabulary.
	counts := map[string]int{}
	docs := make([][]string, 0, len(corpus))
	for _, doc := range corpus {
		toks := textkit.RemoveStopwords(textkit.Words(textkit.Normalize(doc)))
		docs = append(docs, toks)
		for _, t := range toks {
			counts[t]++
		}
	}
	vocab := make([]string, 0, len(counts))
	for w, c := range counts {
		if c >= minCount {
			vocab = append(vocab, w)
		}
	}
	sort.Strings(vocab)
	index := make(map[string]int, len(vocab))
	for i, w := range vocab {
		index[w] = i
	}

	// Pass 2: co-occurrence counts (sparse).
	cooc := make([]map[int]float64, len(vocab))
	for i := range cooc {
		cooc[i] = map[int]float64{}
	}
	rowSums := make([]float64, len(vocab))
	total := 0.0
	for _, toks := range docs {
		for i, t := range toks {
			wi, ok := index[t]
			if !ok {
				continue
			}
			for j := i - window; j <= i+window; j++ {
				if j == i || j < 0 || j >= len(toks) {
					continue
				}
				cj, ok := index[toks[j]]
				if !ok {
					continue
				}
				cooc[wi][cj]++
				rowSums[wi]++
				total++
			}
		}
	}

	// PPMI rows projected by a seeded sparse random matrix
	// (Achlioptas ±1 with density 1/3) into dim dimensions.
	wv := &WordVectors{dim: dim, vecs: make(map[string]Vector, len(vocab))}
	if total == 0 {
		return wv
	}
	proj := newProjector(dim, seed)
	for wi, w := range vocab {
		v := make(Vector, dim)
		for cj, n := range cooc[wi] {
			pmi := math.Log((n * total) / (rowSums[wi] * rowSums[cj]))
			if pmi <= 0 {
				continue
			}
			proj.addInto(v, cj, pmi)
		}
		wv.vecs[w] = v.Normalize()
	}
	return wv
}

// projector lazily materializes rows of a sparse random projection
// matrix, keyed by source index, deterministically from a seed.
type projector struct {
	dim  int
	seed int64
}

func newProjector(dim int, seed int64) *projector { return &projector{dim: dim, seed: seed} }

// addInto adds weight * row(srcIdx) into v.
func (p *projector) addInto(v Vector, srcIdx int, weight float64) {
	mix := uint64(p.seed) ^ uint64(srcIdx+1)*0x9e3779b97f4a7c15
	rng := rand.New(rand.NewSource(int64(mix)))
	for d := 0; d < p.dim; d++ {
		switch rng.Intn(6) {
		case 0:
			v[d] += weight
		case 1:
			v[d] -= weight
		}
	}
}

// Dim returns the vector dimensionality.
func (wv *WordVectors) Dim() int { return wv.dim }

// Len returns the vocabulary size.
func (wv *WordVectors) Len() int { return len(wv.vecs) }

// Word returns the vector for w and whether it is in vocabulary.
func (wv *WordVectors) Word(w string) (Vector, bool) {
	v, ok := wv.vecs[w]
	return v, ok
}

// Doc embeds a document as the normalized mean of its in-vocabulary
// word vectors. Out-of-vocabulary documents get a zero vector.
func (wv *WordVectors) Doc(text string) Vector {
	v := make(Vector, wv.dim)
	toks := textkit.RemoveStopwords(textkit.Words(textkit.Normalize(text)))
	n := 0
	for _, t := range toks {
		if tv, ok := wv.vecs[t]; ok {
			for i := range v {
				v[i] += tv[i]
			}
			n++
		}
	}
	if n == 0 {
		return v
	}
	for i := range v {
		v[i] /= float64(n)
	}
	return v.Normalize()
}

// Nearest returns the k in-vocabulary words most similar to w by
// cosine, excluding w itself. Results are sorted by descending
// similarity with ties broken alphabetically for determinism.
func (wv *WordVectors) Nearest(w string, k int) []string {
	qv, ok := wv.vecs[w]
	if !ok || k <= 0 {
		return nil
	}
	type cand struct {
		word string
		sim  float64
	}
	cands := make([]cand, 0, len(wv.vecs))
	for other, v := range wv.vecs {
		if other == w {
			continue
		}
		cands = append(cands, cand{other, Cosine(qv, v)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sim != cands[j].sim {
			return cands[i].sim > cands[j].sim
		}
		return cands[i].word < cands[j].word
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].word
	}
	return out
}
