package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/task"
)

// Result bundles the metrics of one classifier on one test set.
type Result struct {
	Classifier string
	Task       string
	N          int
	Accuracy   float64
	MacroF1    float64
	MicroF1    float64
	WeightedF1 float64
	PositiveF1 float64 // F1 of class 1 (binary clinical class)
	Kappa      float64
	AUROC      float64 // binary tasks with scores only; else 0
	AUPRC      float64 // average precision; binary tasks with scores
	OrdinalMAE float64
	ECE        float64 // over examples with per-class scores (see Scored)
	Scored     int     // examples whose prediction carried scores
	Unparsed   int     // predictions that could not be mapped to a label
	Matrix     *ConfusionMatrix
	Golds      []int
	Preds      []int
	Correct    []bool
}

// Evaluate runs clf over every test example and computes the full
// metric set. It is the single evaluation path used by every
// experiment, so all methods are scored identically.
func Evaluate(clf task.Classifier, t *task.Task) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	k := t.NumClasses()
	m := NewConfusionMatrix(k)
	res := &Result{
		Classifier: clf.Name(),
		Task:       t.Name,
		N:          len(t.Test),
		Matrix:     m,
		Golds:      make([]int, 0, len(t.Test)),
		Preds:      make([]int, 0, len(t.Test)),
		Correct:    make([]bool, 0, len(t.Test)),
	}
	var (
		binScores   []float64
		binLabels   []int
		confidences []float64
		confCorrect []bool
	)
	for _, ex := range t.Test {
		pred, err := clf.Predict(ex.Text)
		if err != nil {
			return nil, fmt.Errorf("eval: %s on %q: %w", clf.Name(), t.Name, err)
		}
		if err := m.Add(ex.Label, pred.Label); err != nil {
			return nil, err
		}
		res.Golds = append(res.Golds, ex.Label)
		res.Preds = append(res.Preds, pred.Label)
		res.Correct = append(res.Correct, pred.Label == ex.Label)
		if len(pred.Scores) == k {
			if k == 2 {
				binScores = append(binScores, pred.Scores[1])
				binLabels = append(binLabels, ex.Label)
			}
			conf := 0.0
			for _, s := range pred.Scores {
				if s > conf {
					conf = s
				}
			}
			if conf < 0 {
				conf = 0
			}
			if conf > 1 {
				conf = 1
			}
			confidences = append(confidences, conf)
			confCorrect = append(confCorrect, pred.Label == ex.Label)
		}
	}
	res.Scored = len(confidences)
	res.Unparsed = m.Unparsed
	res.Accuracy = m.Accuracy()
	res.MacroF1 = m.MacroF1()
	res.MicroF1 = m.MicroF1()
	res.WeightedF1 = m.WeightedF1()
	res.PositiveF1 = m.PositiveF1()
	res.Kappa = m.Kappa()
	if mae, err := OrdinalMAE(res.Golds, res.Preds, k); err == nil {
		res.OrdinalMAE = mae
	}
	// AUROC and ECE are computed over the score-bearing subset of
	// predictions (methods that only sometimes verbalize confidence
	// — LLM prompting — are still measurable, with Scored recording
	// the coverage). A minimum of 10 scored examples avoids
	// meaningless estimates.
	const minScored = 10
	enough := func(n int) bool { return n >= minScored || (n > 0 && n == len(t.Test)) }
	if k == 2 && enough(len(binScores)) {
		if auc, err := AUROC(binLabels, binScores); err == nil {
			res.AUROC = auc
		}
		if ap, err := AveragePrecision(binLabels, binScores); err == nil {
			res.AUPRC = ap
		}
	}
	if enough(len(confidences)) {
		if _, ece, err := Calibration(confidences, confCorrect, 10); err == nil {
			res.ECE = ece
		}
	}
	return res, nil
}

// F1CI computes a bootstrap confidence interval for macro-F1 from a
// Result's stored predictions.
func (r *Result) F1CI(resamples int, alpha float64, seed int64) (lo, hi float64, err error) {
	k := r.Matrix.K
	return BootstrapCI(len(r.Golds), resamples, alpha, seed, func(idx []int) float64 {
		m := NewConfusionMatrix(k)
		for _, i := range idx {
			_ = m.Add(r.Golds[i], r.Preds[i])
		}
		return m.MacroF1()
	})
}

// CompareMcNemar runs McNemar's test between two results evaluated
// on the same test set (paired by index).
func CompareMcNemar(a, b *Result) (stat, p float64, err error) {
	if len(a.Correct) != len(b.Correct) {
		return 0, 0, fmt.Errorf("eval: unpaired results (%d vs %d examples)", len(a.Correct), len(b.Correct))
	}
	var onlyA, onlyB int
	for i := range a.Correct {
		switch {
		case a.Correct[i] && !b.Correct[i]:
			onlyA++
		case !a.Correct[i] && b.Correct[i]:
			onlyB++
		}
	}
	return McNemar(onlyA, onlyB)
}

// KFold yields k stratified folds as (train, test) pairs.
// Every example appears in exactly one test fold. Deterministic
// under seed.
func KFold(exs []task.Example, k int, numClasses int, seed int64) ([][2][]task.Example, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: k-fold needs k >= 2, got %d", k)
	}
	if len(exs) < k {
		return nil, fmt.Errorf("eval: %d examples for %d folds", len(exs), k)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := make([][]task.Example, numClasses)
	for _, ex := range exs {
		if ex.Label < 0 || ex.Label >= numClasses {
			return nil, fmt.Errorf("eval: label %d out of range", ex.Label)
		}
		byClass[ex.Label] = append(byClass[ex.Label], ex)
	}
	folds := make([][]task.Example, k)
	for _, class := range byClass {
		rng.Shuffle(len(class), func(i, j int) { class[i], class[j] = class[j], class[i] })
		for i, ex := range class {
			folds[i%k] = append(folds[i%k], ex)
		}
	}
	out := make([][2][]task.Example, k)
	for f := 0; f < k; f++ {
		var train []task.Example
		for g := 0; g < k; g++ {
			if g != f {
				train = append(train, folds[g]...)
			}
		}
		out[f] = [2][]task.Example{train, folds[f]}
	}
	return out, nil
}
