// Package eval implements the evaluation substrate: confusion
// matrices, classification metrics (accuracy, precision/recall/F1 in
// per-class, macro, micro, and weighted forms, AUROC, Cohen's kappa,
// ordinal MAE, expected calibration error), resampling utilities
// (bootstrap confidence intervals, k-fold cross-validation), and
// paired significance tests (McNemar, permutation).
package eval

import (
	"fmt"
	"math"
)

// ConfusionMatrix accumulates gold-vs-predicted counts for a
// k-class problem. Cell [g][p] counts examples with gold class g
// predicted as p. Predictions outside [0,k) (e.g. LLM parse
// failures marked -1) are counted in Unparsed and excluded from the
// matrix but included in totals, so accuracy still penalizes them.
type ConfusionMatrix struct {
	K        int
	Cells    [][]int
	Unparsed int
}

// NewConfusionMatrix returns an empty k-class matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	cells := make([][]int, k)
	for i := range cells {
		cells[i] = make([]int, k)
	}
	return &ConfusionMatrix{K: k, Cells: cells}
}

// Add records one (gold, predicted) observation.
func (m *ConfusionMatrix) Add(gold, pred int) error {
	if gold < 0 || gold >= m.K {
		return fmt.Errorf("eval: gold label %d out of range [0,%d)", gold, m.K)
	}
	if pred < 0 || pred >= m.K {
		m.Unparsed++
		return nil
	}
	m.Cells[gold][pred]++
	return nil
}

// Total returns the number of observations, including unparsed.
func (m *ConfusionMatrix) Total() int {
	n := m.Unparsed
	for _, row := range m.Cells {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Correct returns the diagonal sum.
func (m *ConfusionMatrix) Correct() int {
	n := 0
	for i := 0; i < m.K; i++ {
		n += m.Cells[i][i]
	}
	return n
}

// Accuracy returns Correct/Total, or 0 for an empty matrix.
func (m *ConfusionMatrix) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.Correct()) / float64(t)
}

// ClassPRF holds precision, recall, F1, and support for one class.
type ClassPRF struct {
	Precision, Recall, F1 float64
	Support               int
}

// PerClass computes precision/recall/F1 per class. A class with no
// predicted examples has precision 0; a class with no gold examples
// has recall 0 (and support 0).
func (m *ConfusionMatrix) PerClass() []ClassPRF {
	out := make([]ClassPRF, m.K)
	for c := 0; c < m.K; c++ {
		tp := m.Cells[c][c]
		var fp, fn int
		for g := 0; g < m.K; g++ {
			if g != c {
				fp += m.Cells[g][c]
				fn += m.Cells[c][g]
			}
		}
		support := tp + fn
		p := safeDiv(float64(tp), float64(tp+fp))
		r := safeDiv(float64(tp), float64(tp+fn))
		out[c] = ClassPRF{
			Precision: p,
			Recall:    r,
			F1:        safeDiv(2*p*r, p+r),
			Support:   support,
		}
	}
	return out
}

// MacroF1 averages per-class F1 with equal class weight.
func (m *ConfusionMatrix) MacroF1() float64 {
	prf := m.PerClass()
	if len(prf) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range prf {
		sum += c.F1
	}
	return sum / float64(len(prf))
}

// WeightedF1 averages per-class F1 weighted by gold support.
// Unparsed predictions reduce recall (they count as support via gold
// labels only when recorded through Add with a valid gold label; the
// caller is responsible for passing every test example through Add).
func (m *ConfusionMatrix) WeightedF1() float64 {
	prf := m.PerClass()
	total := 0
	sum := 0.0
	for _, c := range prf {
		sum += c.F1 * float64(c.Support)
		total += c.Support
	}
	return safeDiv(sum, float64(total))
}

// MicroF1 computes micro-averaged F1. For single-label
// classification with no unparsed predictions this equals accuracy;
// unparsed predictions act as false negatives without matching false
// positives, so micro-F1 dips below accuracy-over-parsed.
func (m *ConfusionMatrix) MicroF1() float64 {
	tp := m.Correct()
	fn := m.Total() - tp // includes unparsed
	fp := 0
	for g := 0; g < m.K; g++ {
		for p := 0; p < m.K; p++ {
			if g != p {
				fp += m.Cells[g][p]
			}
		}
	}
	p := safeDiv(float64(tp), float64(tp+fp))
	r := safeDiv(float64(tp), float64(tp+fn))
	return safeDiv(2*p*r, p+r)
}

// PositiveF1 returns the F1 of class 1, the convention for binary
// detection tasks where class 1 is the clinical class.
func (m *ConfusionMatrix) PositiveF1() float64 {
	if m.K < 2 {
		return 0
	}
	return m.PerClass()[1].F1
}

// Kappa computes Cohen's kappa (chance-corrected agreement).
// Unparsed predictions are excluded.
func (m *ConfusionMatrix) Kappa() float64 {
	n := m.Total() - m.Unparsed
	if n == 0 {
		return 0
	}
	po := float64(m.Correct()) / float64(n)
	pe := 0.0
	for c := 0; c < m.K; c++ {
		var goldC, predC int
		for j := 0; j < m.K; j++ {
			goldC += m.Cells[c][j]
			predC += m.Cells[j][c]
		}
		pe += float64(goldC) * float64(predC)
	}
	pe /= float64(n) * float64(n)
	if pe == 1 {
		return 0
	}
	return (po - pe) / (1 - pe)
}

// OrdinalMAE returns the mean absolute label distance, the standard
// severity-grading metric (labels must be ordered). Unparsed
// predictions count as the maximum possible error, penalizing
// non-answers on risk tasks.
func OrdinalMAE(golds, preds []int, k int) (float64, error) {
	if len(golds) != len(preds) {
		return 0, fmt.Errorf("eval: %d golds vs %d preds", len(golds), len(preds))
	}
	if len(golds) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i, g := range golds {
		p := preds[i]
		if p < 0 || p >= k {
			sum += float64(k - 1)
			continue
		}
		sum += math.Abs(float64(g - p))
	}
	return sum / float64(len(golds)), nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
