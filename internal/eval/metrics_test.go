package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConfusionMatrixBasics(t *testing.T) {
	m := NewConfusionMatrix(2)
	// gold 0: 3 right, 1 wrong; gold 1: 2 right, 2 wrong.
	for i := 0; i < 3; i++ {
		_ = m.Add(0, 0)
	}
	_ = m.Add(0, 1)
	for i := 0; i < 2; i++ {
		_ = m.Add(1, 1)
	}
	for i := 0; i < 2; i++ {
		_ = m.Add(1, 0)
	}
	if m.Total() != 8 {
		t.Errorf("Total = %d", m.Total())
	}
	if m.Correct() != 5 {
		t.Errorf("Correct = %d", m.Correct())
	}
	if !almostEq(m.Accuracy(), 5.0/8) {
		t.Errorf("Accuracy = %v", m.Accuracy())
	}
	prf := m.PerClass()
	// class 1: tp=2 fp=1 fn=2 -> p=2/3 r=1/2 f1=4/7
	if !almostEq(prf[1].Precision, 2.0/3) || !almostEq(prf[1].Recall, 0.5) {
		t.Errorf("class1 PRF = %+v", prf[1])
	}
	if !almostEq(prf[1].F1, 2*(2.0/3)*0.5/((2.0/3)+0.5)) {
		t.Errorf("class1 F1 = %v", prf[1].F1)
	}
	if prf[0].Support != 4 || prf[1].Support != 4 {
		t.Errorf("supports = %d %d", prf[0].Support, prf[1].Support)
	}
}

func TestAddRejectsGoldOutOfRange(t *testing.T) {
	m := NewConfusionMatrix(2)
	if err := m.Add(2, 0); err == nil {
		t.Error("gold out of range must error")
	}
	if err := m.Add(-1, 0); err == nil {
		t.Error("negative gold must error")
	}
}

func TestUnparsedCountsAgainstAccuracy(t *testing.T) {
	m := NewConfusionMatrix(2)
	_ = m.Add(0, 0)
	_ = m.Add(1, -1) // parse failure
	if m.Unparsed != 1 {
		t.Errorf("Unparsed = %d", m.Unparsed)
	}
	if !almostEq(m.Accuracy(), 0.5) {
		t.Errorf("Accuracy = %v, want 0.5 (unparsed penalized)", m.Accuracy())
	}
}

func TestMicroF1EqualsAccuracyWithoutUnparsed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewConfusionMatrix(3)
	for i := 0; i < 300; i++ {
		_ = m.Add(rng.Intn(3), rng.Intn(3))
	}
	if !almostEq(m.MicroF1(), m.Accuracy()) {
		t.Errorf("micro-F1 %v != accuracy %v", m.MicroF1(), m.Accuracy())
	}
}

func TestPerfectAndWorstMatrices(t *testing.T) {
	perfect := NewConfusionMatrix(3)
	for c := 0; c < 3; c++ {
		for i := 0; i < 10; i++ {
			_ = perfect.Add(c, c)
		}
	}
	if !almostEq(perfect.Accuracy(), 1) || !almostEq(perfect.MacroF1(), 1) ||
		!almostEq(perfect.WeightedF1(), 1) || !almostEq(perfect.Kappa(), 1) {
		t.Errorf("perfect matrix: acc=%v macro=%v weighted=%v kappa=%v",
			perfect.Accuracy(), perfect.MacroF1(), perfect.WeightedF1(), perfect.Kappa())
	}
	worst := NewConfusionMatrix(2)
	for i := 0; i < 10; i++ {
		_ = worst.Add(0, 1)
		_ = worst.Add(1, 0)
	}
	if worst.Accuracy() != 0 || worst.MacroF1() != 0 {
		t.Errorf("worst matrix: acc=%v macro=%v", worst.Accuracy(), worst.MacroF1())
	}
	if worst.Kappa() >= 0 {
		t.Errorf("systematically wrong kappa = %v, want negative", worst.Kappa())
	}
}

func TestWeightedF1WeightsBySupport(t *testing.T) {
	m := NewConfusionMatrix(2)
	// class 0: 90 examples, all right. class 1: 10 examples, all wrong.
	for i := 0; i < 90; i++ {
		_ = m.Add(0, 0)
	}
	for i := 0; i < 10; i++ {
		_ = m.Add(1, 0)
	}
	macro := m.MacroF1()
	weighted := m.WeightedF1()
	if weighted <= macro {
		t.Errorf("weighted (%v) should exceed macro (%v) when majority class is right", weighted, macro)
	}
}

func TestPositiveF1(t *testing.T) {
	m := NewConfusionMatrix(2)
	_ = m.Add(1, 1)
	_ = m.Add(1, 0)
	_ = m.Add(0, 0)
	// tp=1 fp=0 fn=1: p=1, r=0.5, f1=2/3
	if !almostEq(m.PositiveF1(), 2.0/3) {
		t.Errorf("PositiveF1 = %v", m.PositiveF1())
	}
	if NewConfusionMatrix(1).PositiveF1() != 0 {
		t.Error("k<2 PositiveF1 should be 0")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := NewConfusionMatrix(2)
	if m.Accuracy() != 0 || m.MacroF1() != 0 || m.Kappa() != 0 {
		t.Error("empty matrix metrics should be 0")
	}
}

func TestOrdinalMAE(t *testing.T) {
	mae, err := OrdinalMAE([]int{0, 1, 2, 3}, []int{0, 1, 2, 3}, 4)
	if err != nil || mae != 0 {
		t.Errorf("perfect MAE = %v, err %v", mae, err)
	}
	mae, _ = OrdinalMAE([]int{0, 3}, []int{3, 0}, 4)
	if !almostEq(mae, 3) {
		t.Errorf("inverted MAE = %v, want 3", mae)
	}
	// Unparsed counts as max error.
	mae, _ = OrdinalMAE([]int{0}, []int{-1}, 4)
	if !almostEq(mae, 3) {
		t.Errorf("unparsed MAE = %v, want 3", mae)
	}
	if _, err := OrdinalMAE([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch must error")
	}
	mae, err = OrdinalMAE(nil, nil, 4)
	if err != nil || mae != 0 {
		t.Errorf("empty MAE = %v, %v", mae, err)
	}
}

// Property: metrics stay within [0,1] (kappa within [-1,1]) for any
// random confusion matrix.
func TestMetricBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		m := NewConfusionMatrix(k)
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			if err := m.Add(rng.Intn(k), rng.Intn(k)); err != nil {
				return false
			}
		}
		in01 := func(x float64) bool { return x >= 0 && x <= 1+1e-12 }
		return in01(m.Accuracy()) && in01(m.MacroF1()) && in01(m.MicroF1()) &&
			in01(m.WeightedF1()) && m.Kappa() >= -1-1e-12 && m.Kappa() <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAUROCPerfectAndInverted(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	auc, err := AUROC(labels, []float64{0.1, 0.2, 0.8, 0.9})
	if err != nil || !almostEq(auc, 1) {
		t.Errorf("perfect AUROC = %v, err %v", auc, err)
	}
	auc, _ = AUROC(labels, []float64{0.9, 0.8, 0.2, 0.1})
	if !almostEq(auc, 0) {
		t.Errorf("inverted AUROC = %v", auc)
	}
	auc, _ = AUROC(labels, []float64{0.5, 0.5, 0.5, 0.5})
	if !almostEq(auc, 0.5) {
		t.Errorf("all-ties AUROC = %v, want 0.5", auc)
	}
}

func TestAUROCErrors(t *testing.T) {
	if _, err := AUROC([]int{1, 1}, []float64{0.1, 0.2}); err == nil {
		t.Error("single-class AUROC must error")
	}
	if _, err := AUROC([]int{0, 2}, []float64{0.1, 0.2}); err == nil {
		t.Error("non-binary label must error")
	}
	if _, err := AUROC([]int{0}, []float64{0.1, 0.2}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestAUROCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4000
	labels := make([]int, n)
	scores := make([]float64, n)
	for i := range labels {
		labels[i] = rng.Intn(2)
		scores[i] = rng.Float64()
	}
	auc, err := AUROC(labels, scores)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.45 || auc > 0.55 {
		t.Errorf("random AUROC = %v, want ~0.5", auc)
	}
}

func TestROCCurveEndpoints(t *testing.T) {
	labels := []int{0, 1, 0, 1, 1}
	scores := []float64{0.2, 0.9, 0.4, 0.3, 0.8}
	pts, err := ROCCurve(labels, scores)
	if err != nil {
		t.Fatal(err)
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("first point = %+v", first)
	}
	if !almostEq(last.FPR, 1) || !almostEq(last.TPR, 1) {
		t.Errorf("last point = %+v", last)
	}
	// Monotone non-decreasing in both axes.
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR-1e-12 || pts[i].TPR < pts[i-1].TPR-1e-12 {
			t.Errorf("ROC not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestCalibrationPerfect(t *testing.T) {
	// Confidence 0.75 bucket with 75% accuracy -> ECE ~ 0.
	conf := make([]float64, 100)
	correct := make([]bool, 100)
	for i := range conf {
		conf[i] = 0.75
		correct[i] = i < 75
	}
	_, ece, err := Calibration(conf, correct, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece > 1e-9 {
		t.Errorf("perfectly calibrated ECE = %v", ece)
	}
}

func TestCalibrationOverconfident(t *testing.T) {
	conf := make([]float64, 100)
	correct := make([]bool, 100)
	for i := range conf {
		conf[i] = 0.99
		correct[i] = i < 50
	}
	_, ece, err := Calibration(conf, correct, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ece, 0.49) {
		t.Errorf("overconfident ECE = %v, want 0.49", ece)
	}
}

func TestCalibrationErrors(t *testing.T) {
	if _, _, err := Calibration([]float64{0.5}, []bool{true, false}, 10); err == nil {
		t.Error("length mismatch must error")
	}
	if _, _, err := Calibration([]float64{1.5}, []bool{true}, 10); err == nil {
		t.Error("confidence > 1 must error")
	}
	if _, _, err := Calibration([]float64{0.5}, []bool{true}, 0); err == nil {
		t.Error("bins=0 must error")
	}
	// c == 1.0 must not panic (top-bin edge).
	if _, _, err := Calibration([]float64{1.0}, []bool{true}, 10); err != nil {
		t.Errorf("confidence 1.0: %v", err)
	}
}
