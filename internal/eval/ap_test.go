package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestAveragePrecisionPerfect(t *testing.T) {
	ap, err := AveragePrecision([]int{0, 0, 1, 1}, []float64{0.1, 0.2, 0.8, 0.9})
	if err != nil || !almostEq(ap, 1) {
		t.Errorf("perfect AP = %v, err %v", ap, err)
	}
}

func TestAveragePrecisionWorst(t *testing.T) {
	// Both positives ranked last among 4: prefix precisions are
	// 1/3 (recall .5) and 2/4 (recall 1) -> AP = .5*(1/3) + .5*(1/2).
	ap, err := AveragePrecision([]int{1, 1, 0, 0}, []float64{0.1, 0.2, 0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*(1.0/3) + 0.5*0.5
	if !almostEq(ap, want) {
		t.Errorf("AP = %v, want %v", ap, want)
	}
}

func TestAveragePrecisionTiesOneBlock(t *testing.T) {
	// All scores equal: single block, precision = prevalence.
	ap, err := AveragePrecision([]int{1, 0, 0, 1}, []float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ap, 0.5) {
		t.Errorf("all-ties AP = %v, want prevalence 0.5", ap)
	}
}

func TestAveragePrecisionBaselineIsPrevalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	labels := make([]int, n)
	scores := make([]float64, n)
	pos := 0
	for i := range labels {
		if rng.Float64() < 0.2 {
			labels[i] = 1
			pos++
		}
		scores[i] = rng.Float64()
	}
	ap, err := AveragePrecision(labels, scores)
	if err != nil {
		t.Fatal(err)
	}
	prevalence := float64(pos) / float64(n)
	if math.Abs(ap-prevalence) > 0.03 {
		t.Errorf("random AP = %v, want ~prevalence %v", ap, prevalence)
	}
}

func TestAveragePrecisionErrors(t *testing.T) {
	if _, err := AveragePrecision([]int{0, 0}, []float64{0.1, 0.2}); err == nil {
		t.Error("no positives must error")
	}
	if _, err := AveragePrecision([]int{2}, []float64{0.1}); err == nil {
		t.Error("non-binary label must error")
	}
	if _, err := AveragePrecision([]int{1}, []float64{0.1, 0.2}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestAveragePrecisionBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(50)
		labels := make([]int, n)
		scores := make([]float64, n)
		labels[0] = 1 // ensure a positive
		for i := range labels {
			if i > 0 {
				labels[i] = rng.Intn(2)
			}
			scores[i] = rng.Float64()
		}
		ap, err := AveragePrecision(labels, scores)
		if err != nil {
			t.Fatal(err)
		}
		if ap < 0 || ap > 1 {
			t.Fatalf("AP %v out of [0,1]", ap)
		}
	}
}
