package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestFleissKappaPerfectAgreement(t *testing.T) {
	ratings := [][]int{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {1, 1, 1}}
	kap, err := FleissKappa(ratings, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kap-1) > 1e-12 {
		t.Errorf("perfect agreement kappa = %v", kap)
	}
}

func TestFleissKappaChanceLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ratings := make([][]int, 3000)
	for i := range ratings {
		ratings[i] = []int{rng.Intn(2), rng.Intn(2), rng.Intn(2)}
	}
	kap, err := FleissKappa(ratings, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kap) > 0.05 {
		t.Errorf("random ratings kappa = %v, want ~0", kap)
	}
}

func TestFleissKappaKnownValue(t *testing.T) {
	// Classic worked example from Fleiss (1971), 10 items, 5 raters,
	// reproduced condensed: use a small fixture with hand-computed
	// value instead. 4 items, 3 raters, 2 categories.
	ratings := [][]int{
		{0, 0, 1},
		{0, 0, 0},
		{1, 1, 1},
		{0, 1, 1},
	}
	// Hand computation: P_i per item = {1/3, 1, 1, 1/3}; P̄ = 2/3.
	// p_0 = 6/12 = .5, p_1 = .5, P_e = .5. kappa = (2/3-.5)/.5 = 1/3.
	kap, err := FleissKappa(ratings, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(kap-1.0/3) > 1e-9 {
		t.Errorf("kappa = %v, want 1/3", kap)
	}
}

func TestFleissKappaErrors(t *testing.T) {
	if _, err := FleissKappa(nil, 2); err == nil {
		t.Error("empty ratings must error")
	}
	if _, err := FleissKappa([][]int{{0, 1}}, 1); err == nil {
		t.Error("k=1 must error")
	}
	if _, err := FleissKappa([][]int{{0}}, 2); err == nil {
		t.Error("single rater must error")
	}
	if _, err := FleissKappa([][]int{{0, 1}, {0}}, 2); err == nil {
		t.Error("ragged ratings must error")
	}
	if _, err := FleissKappa([][]int{{0, 5}}, 2); err == nil {
		t.Error("out-of-range category must error")
	}
}

func TestKrippendorffAlphaPerfectAndChance(t *testing.T) {
	perfect := [][]int{{0, 0}, {1, 1}, {2, 2}, {0, 0}}
	a, err := KrippendorffAlpha(perfect, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 {
		t.Errorf("perfect alpha = %v", a)
	}
	rng := rand.New(rand.NewSource(9))
	random := make([][]int, 4000)
	for i := range random {
		random[i] = []int{rng.Intn(3), rng.Intn(3)}
	}
	a, err = KrippendorffAlpha(random, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a) > 0.05 {
		t.Errorf("random alpha = %v, want ~0", a)
	}
}

func TestKrippendorffAlphaMissingData(t *testing.T) {
	// Variable rater counts; single-rating items are skipped.
	ratings := [][]int{
		{0, 0, 0},
		{1, 1},
		{0}, // skipped
		{1, 1, 1, 1},
	}
	a, err := KrippendorffAlpha(ratings, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 {
		t.Errorf("consistent ratings alpha = %v, want 1", a)
	}
	if _, err := KrippendorffAlpha([][]int{{0}}, 2); err == nil {
		t.Error("no pairable items must error")
	}
}

func TestAgreementTracksAnnotatorNoise(t *testing.T) {
	// Higher annotator noise must produce lower kappa and alpha.
	mkRatings := func(noise float64) [][]int {
		rng := rand.New(rand.NewSource(17))
		ratings := make([][]int, 1500)
		for i := range ratings {
			gold := rng.Intn(2)
			row := make([]int, 3)
			for a := range row {
				if rng.Float64() < noise {
					row[a] = 1 - gold
				} else {
					row[a] = gold
				}
			}
			ratings[i] = row
		}
		return ratings
	}
	kLow, _ := FleissKappa(mkRatings(0.05), 2)
	kHigh, _ := FleissKappa(mkRatings(0.3), 2)
	if kLow <= kHigh {
		t.Errorf("kappa should fall with noise: %v vs %v", kLow, kHigh)
	}
	aLow, _ := KrippendorffAlpha(mkRatings(0.05), 2)
	aHigh, _ := KrippendorffAlpha(mkRatings(0.3), 2)
	if aLow <= aHigh {
		t.Errorf("alpha should fall with noise: %v vs %v", aLow, aHigh)
	}
	// Fleiss and Krippendorff should roughly agree on this design.
	if math.Abs(kLow-aLow) > 0.05 {
		t.Errorf("kappa %v and alpha %v diverge unexpectedly", kLow, aLow)
	}
}

func TestMajorityVote(t *testing.T) {
	ratings := [][]int{{0, 0, 1}, {1, 1, 0}, {2, 2, 2}}
	got, err := MajorityVote(ratings, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("vote[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Tie breaks to lowest index.
	got, _ = MajorityVote([][]int{{1, 0}}, 2)
	if got[0] != 0 {
		t.Errorf("tie break = %d, want 0", got[0])
	}
	if _, err := MajorityVote([][]int{{}}, 2); err == nil {
		t.Error("empty item must error")
	}
	if _, err := MajorityVote([][]int{{9}}, 2); err == nil {
		t.Error("out-of-range category must error")
	}
}
