package eval

import "fmt"

// Inter-annotator agreement statistics. Mental-health labels are
// subjective (CLPsych reports expert agreement well below 0.7
// kappa), and annotation reliability upper-bounds every model score
// in the benchmark, so the suite measures it explicitly.

// FleissKappa computes Fleiss' kappa for nominal ratings where every
// item is rated by the same number of annotators. ratings[i] lists
// the category assigned to item i by each annotator (values in
// [0,k)).
func FleissKappa(ratings [][]int, k int) (float64, error) {
	if len(ratings) == 0 {
		return 0, fmt.Errorf("eval: Fleiss kappa over zero items")
	}
	if k < 2 {
		return 0, fmt.Errorf("eval: Fleiss kappa needs k >= 2 categories")
	}
	r := len(ratings[0])
	if r < 2 {
		return 0, fmt.Errorf("eval: Fleiss kappa needs >= 2 raters, have %d", r)
	}
	n := float64(len(ratings))
	catTotals := make([]float64, k)
	sumPi := 0.0
	for i, row := range ratings {
		if len(row) != r {
			return 0, fmt.Errorf("eval: item %d has %d ratings, want %d", i, len(row), r)
		}
		counts := make([]float64, k)
		for _, c := range row {
			if c < 0 || c >= k {
				return 0, fmt.Errorf("eval: item %d has category %d out of [0,%d)", i, c, k)
			}
			counts[c]++
			catTotals[c]++
		}
		pi := 0.0
		for _, cnt := range counts {
			pi += cnt * cnt
		}
		pi = (pi - float64(r)) / (float64(r) * float64(r-1))
		sumPi += pi
	}
	pBar := sumPi / n
	pe := 0.0
	for _, tot := range catTotals {
		pj := tot / (n * float64(r))
		pe += pj * pj
	}
	if pe == 1 {
		return 1, nil // degenerate: everyone always picks one category
	}
	return (pBar - pe) / (1 - pe), nil
}

// KrippendorffAlpha computes Krippendorff's alpha for nominal data
// via the coincidence-matrix formulation. ratings[i] lists the
// categories assigned to item i; items may have different numbers of
// ratings, and items with fewer than two are skipped (the standard
// missing-data treatment).
func KrippendorffAlpha(ratings [][]int, k int) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("eval: alpha needs k >= 2 categories")
	}
	// Coincidence matrix.
	o := make([][]float64, k)
	for c := range o {
		o[c] = make([]float64, k)
	}
	used := 0
	for i, row := range ratings {
		if len(row) < 2 {
			continue
		}
		used++
		counts := make([]float64, k)
		for _, c := range row {
			if c < 0 || c >= k {
				return 0, fmt.Errorf("eval: item %d has category %d out of [0,%d)", i, c, k)
			}
			counts[c]++
		}
		r := float64(len(row))
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for c2 := 0; c2 < k; c2++ {
				if counts[c2] == 0 && c2 != c {
					continue
				}
				pair := counts[c] * counts[c2]
				if c == c2 {
					pair = counts[c] * (counts[c] - 1)
				}
				o[c][c2] += pair / (r - 1)
			}
		}
	}
	if used == 0 {
		return 0, fmt.Errorf("eval: alpha needs at least one item with >= 2 ratings")
	}
	nc := make([]float64, k)
	total := 0.0
	for c := 0; c < k; c++ {
		for c2 := 0; c2 < k; c2++ {
			nc[c] += o[c][c2]
		}
		total += nc[c]
	}
	var do, de float64
	for c := 0; c < k; c++ {
		for c2 := 0; c2 < k; c2++ {
			if c == c2 {
				continue
			}
			do += o[c][c2]
			de += nc[c] * nc[c2]
		}
	}
	if total <= 1 {
		return 0, fmt.Errorf("eval: alpha needs more than one pairable rating")
	}
	de /= total - 1
	if de == 0 {
		return 1, nil // all ratings identical
	}
	return 1 - do/de, nil
}

// MajorityVote returns the per-item majority label (ties broken by
// the lowest category index) — how crowdsourced gold labels are
// consolidated in practice.
func MajorityVote(ratings [][]int, k int) ([]int, error) {
	out := make([]int, len(ratings))
	for i, row := range ratings {
		if len(row) == 0 {
			return nil, fmt.Errorf("eval: item %d has no ratings", i)
		}
		counts := make([]int, k)
		for _, c := range row {
			if c < 0 || c >= k {
				return nil, fmt.Errorf("eval: item %d has category %d out of [0,%d)", i, c, k)
			}
			counts[c]++
		}
		best := 0
		for c := 1; c < k; c++ {
			if counts[c] > counts[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out, nil
}
