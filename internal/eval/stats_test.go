package eval

import (
	"math"
	"testing"

	"repro/internal/task"
)

func TestBootstrapCIDeterministicAndOrdered(t *testing.T) {
	data := []float64{0.1, 0.9, 0.4, 0.6, 0.5, 0.8, 0.3, 0.7, 0.2, 0.55}
	metric := func(idx []int) float64 {
		s := 0.0
		for _, i := range idx {
			s += data[i]
		}
		return s / float64(len(idx))
	}
	lo1, hi1, err := BootstrapCI(len(data), 500, 0.05, 42, metric)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, _ := BootstrapCI(len(data), 500, 0.05, 42, metric)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("bootstrap not deterministic under seed")
	}
	if lo1 > hi1 {
		t.Errorf("lo %v > hi %v", lo1, hi1)
	}
	mean, _ := MeanStd(data)
	if lo1 > mean || hi1 < mean {
		t.Errorf("CI [%v,%v] excludes sample mean %v", lo1, hi1, mean)
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	m := func([]int) float64 { return 0 }
	if _, _, err := BootstrapCI(0, 10, 0.05, 1, m); err == nil {
		t.Error("n=0 must error")
	}
	if _, _, err := BootstrapCI(10, 0, 0.05, 1, m); err == nil {
		t.Error("resamples=0 must error")
	}
	if _, _, err := BootstrapCI(10, 10, 1.5, 1, m); err == nil {
		t.Error("alpha out of range must error")
	}
}

func TestMcNemar(t *testing.T) {
	// Identical decisions: p = 1.
	_, p, err := McNemar(0, 0)
	if err != nil || p != 1 {
		t.Errorf("McNemar(0,0) p = %v, err %v", p, err)
	}
	// Strong asymmetry: p should be tiny.
	_, p, _ = McNemar(100, 10)
	if p > 0.001 {
		t.Errorf("McNemar(100,10) p = %v, want < .001", p)
	}
	// Symmetric disagreement: p large.
	_, p, _ = McNemar(50, 50)
	if p < 0.5 {
		t.Errorf("McNemar(50,50) p = %v, want large", p)
	}
	// Small-sample exact path.
	_, p, _ = McNemar(4, 1)
	if p <= 0 || p > 1 {
		t.Errorf("exact McNemar p = %v out of (0,1]", p)
	}
	if _, _, err := McNemar(-1, 2); err == nil {
		t.Error("negative counts must error")
	}
}

func TestChiSquare1Sf(t *testing.T) {
	// Known value: P(chi2_1 > 3.841) ~ 0.05.
	if p := chiSquare1Sf(3.841); math.Abs(p-0.05) > 0.002 {
		t.Errorf("sf(3.841) = %v, want ~0.05", p)
	}
	if chiSquare1Sf(0) != 1 {
		t.Error("sf(0) must be 1")
	}
	if chiSquare1Sf(-5) != 1 {
		t.Error("sf(negative) must be 1")
	}
}

func TestPairedPermutationTest(t *testing.T) {
	// Identical systems: p near 1.
	a := []float64{1, 0, 1, 1, 0, 1, 0, 1}
	p, err := PairedPermutationTest(a, a, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.9 {
		t.Errorf("identical systems p = %v, want ~1", p)
	}
	// Clearly different systems.
	b := make([]float64, 40)
	c := make([]float64, 40)
	for i := range b {
		b[i] = 1
		c[i] = 0
	}
	p, _ = PairedPermutationTest(b, c, 500, 3)
	if p > 0.05 {
		t.Errorf("disjoint systems p = %v, want small", p)
	}
	if _, err := PairedPermutationTest([]float64{1}, []float64{1, 2}, 10, 1); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := PairedPermutationTest(nil, nil, 10, 1); err == nil {
		t.Error("empty input must error")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(m, 5) || !almostEq(s, 2) {
		t.Errorf("MeanStd = %v, %v; want 5, 2", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Error("empty MeanStd should be 0,0")
	}
}

func TestKFoldProperties(t *testing.T) {
	exs := make([]task.Example, 103)
	for i := range exs {
		exs[i] = task.Example{Text: string(rune('a' + i%26)), Label: i % 3}
	}
	folds, err := KFold(exs, 5, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("got %d folds", len(folds))
	}
	totalTest := 0
	for _, f := range folds {
		train, test := f[0], f[1]
		totalTest += len(test)
		if len(train)+len(test) != len(exs) {
			t.Errorf("fold sizes %d + %d != %d", len(train), len(test), len(exs))
		}
	}
	if totalTest != len(exs) {
		t.Errorf("test folds cover %d, want %d", totalTest, len(exs))
	}
}

func TestKFoldErrors(t *testing.T) {
	exs := []task.Example{{Text: "a", Label: 0}, {Text: "b", Label: 1}}
	if _, err := KFold(exs, 1, 2, 1); err == nil {
		t.Error("k=1 must error")
	}
	if _, err := KFold(exs, 5, 2, 1); err == nil {
		t.Error("too few examples must error")
	}
	bad := []task.Example{{Text: "a", Label: 5}, {Text: "b", Label: 0}, {Text: "c", Label: 1}}
	if _, err := KFold(bad, 2, 2, 1); err == nil {
		t.Error("out-of-range label must error")
	}
}

// stubClassifier predicts by text prefix: "p:<label>".
type stubClassifier struct{ scores bool }

func (s stubClassifier) Name() string { return "stub" }
func (s stubClassifier) Predict(text string) (task.Prediction, error) {
	label := int(text[0] - '0')
	p := task.Prediction{Label: label}
	if s.scores {
		p.Scores = []float64{0.2, 0.8}
		if label == 0 {
			p.Scores = []float64{0.8, 0.2}
		}
	}
	return p, nil
}

func TestEvaluateEndToEnd(t *testing.T) {
	tk := &task.Task{
		Name:       "stub-task",
		LabelNames: []string{"neg", "pos"},
		Train:      []task.Example{{Text: "0", Label: 0}},
		Test: []task.Example{
			{Text: "0", Label: 0}, {Text: "1", Label: 1},
			{Text: "0", Label: 1}, {Text: "1", Label: 1},
		},
	}
	res, err := Evaluate(stubClassifier{scores: true}, tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 4 {
		t.Errorf("N = %d", res.N)
	}
	if !almostEq(res.Accuracy, 0.75) {
		t.Errorf("Accuracy = %v", res.Accuracy)
	}
	if res.AUROC <= 0.5 {
		t.Errorf("AUROC = %v, want > 0.5 for aligned scores", res.AUROC)
	}
	if res.Unparsed != 0 {
		t.Errorf("Unparsed = %d", res.Unparsed)
	}
	lo, hi, err := res.F1CI(200, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lo > res.MacroF1 || hi < res.MacroF1 {
		t.Errorf("CI [%v,%v] excludes point estimate %v", lo, hi, res.MacroF1)
	}
}

func TestCompareMcNemarPairing(t *testing.T) {
	a := &Result{Correct: []bool{true, true, false, false}}
	b := &Result{Correct: []bool{true, false, true, false}}
	_, p, err := CompareMcNemar(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Errorf("p = %v", p)
	}
	c := &Result{Correct: []bool{true}}
	if _, _, err := CompareMcNemar(a, c); err == nil {
		t.Error("unpaired results must error")
	}
}
