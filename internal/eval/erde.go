package eval

import (
	"fmt"
	"math"
)

// EarlyDecision is one system decision on a user history in the
// early-detection setting: whether an alarm was raised, and after
// how many posts.
type EarlyDecision struct {
	Alarm bool // system flagged the user as at-risk
	Delay int  // 1-based post count read before the decision
	Gold  bool // user is truly at-risk
}

// ERDE computes the early risk detection error of the eRisk shared
// tasks: false positives cost cfp, false negatives cost cfn = 1,
// and true positives cost a latency-dependent fraction of cfn that
// grows sigmoidal in the decision delay with midpoint o (the
// familiar ERDE_5 / ERDE_50 instantiations use o = 5 and o = 50).
// The returned value is the mean per-user cost — lower is better.
func ERDE(decisions []EarlyDecision, cfp float64, o int) (float64, error) {
	if len(decisions) == 0 {
		return 0, fmt.Errorf("eval: ERDE over zero decisions")
	}
	if cfp <= 0 || cfp > 1 {
		return 0, fmt.Errorf("eval: ERDE cfp %v out of (0,1]", cfp)
	}
	if o <= 0 {
		return 0, fmt.Errorf("eval: ERDE midpoint o = %d", o)
	}
	const cfn = 1.0
	total := 0.0
	for i, d := range decisions {
		if d.Delay < 1 {
			return 0, fmt.Errorf("eval: decision %d has delay %d < 1", i, d.Delay)
		}
		switch {
		case d.Alarm && d.Gold:
			total += latencyCost(d.Delay, o) * cfn
		case d.Alarm && !d.Gold:
			total += cfp
		case !d.Alarm && d.Gold:
			total += cfn
		}
	}
	return total / float64(len(decisions)), nil
}

// latencyCost is ERDE's sigmoidal latency penalty in [0,1):
// ~0 for immediate detection, ~1 for detection far past o posts.
func latencyCost(delay, o int) float64 {
	return 1 - 1/(1+math.Exp(float64(delay-o)))
}

// LatencyWeightedF1 computes the eRisk-2019-style latency-weighted
// F1: the F1 over alarm decisions multiplied by the median-delay
// speed factor (1 for instant detections, decaying with delay using
// the penalty p per post).
func LatencyWeightedF1(decisions []EarlyDecision, p float64) (float64, error) {
	if len(decisions) == 0 {
		return 0, fmt.Errorf("eval: latency F1 over zero decisions")
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("eval: latency penalty %v out of (0,1)", p)
	}
	var tp, fp, fn int
	var tpDelays []int
	for _, d := range decisions {
		switch {
		case d.Alarm && d.Gold:
			tp++
			tpDelays = append(tpDelays, d.Delay)
		case d.Alarm && !d.Gold:
			fp++
		case !d.Alarm && d.Gold:
			fn++
		}
	}
	prec := safeDiv(float64(tp), float64(tp+fp))
	rec := safeDiv(float64(tp), float64(tp+fn))
	f1 := safeDiv(2*prec*rec, prec+rec)
	if tp == 0 {
		return 0, nil
	}
	med := median(tpDelays)
	speed := 1 - math.Tanh(p*(med-1))
	return f1 * speed, nil
}

func median(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	for i := 1; i < len(sorted); i++ { // insertion sort; n is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	n := len(sorted)
	if n%2 == 1 {
		return float64(sorted[n/2])
	}
	return float64(sorted[n/2-1]+sorted[n/2]) / 2
}
