package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a two-sided (1-alpha) confidence interval
// for a metric by nonparametric bootstrap over example indices.
// metric receives a resampled index set and must return the metric
// value on that resample. Deterministic under seed.
func BootstrapCI(n, resamples int, alpha float64, seed int64,
	metric func(indices []int) float64) (lo, hi float64, err error) {
	if n <= 0 || resamples <= 0 {
		return 0, 0, fmt.Errorf("eval: bootstrap needs n>0 and resamples>0 (n=%d, resamples=%d)", n, resamples)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, fmt.Errorf("eval: alpha %v out of (0,1)", alpha)
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, resamples)
	idx := make([]int, n)
	for r := 0; r < resamples; r++ {
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		vals[r] = metric(idx)
	}
	sort.Float64s(vals)
	loIdx := int(alpha / 2 * float64(resamples))
	hiIdx := int((1 - alpha/2) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return vals[loIdx], vals[hiIdx], nil
}

// McNemar runs McNemar's test on paired classifier decisions.
// b counts examples classifier A got right and B got wrong; c the
// reverse. It returns the continuity-corrected chi-square statistic
// and an approximate p-value (chi-square with 1 df). When b+c is
// tiny (< 10) the chi-square approximation is poor; the exact
// binomial form is used instead.
func McNemar(b, c int) (stat, p float64, err error) {
	if b < 0 || c < 0 {
		return 0, 0, fmt.Errorf("eval: negative disagreement counts b=%d c=%d", b, c)
	}
	n := b + c
	if n == 0 {
		return 0, 1, nil // identical decisions: no evidence of difference
	}
	if n < 10 {
		// Exact two-sided binomial test with p=0.5.
		k := b
		if c < b {
			k = c
		}
		cum := 0.0
		for i := 0; i <= k; i++ {
			cum += binomPMF(n, i, 0.5)
		}
		p = 2 * cum
		if p > 1 {
			p = 1
		}
		return 0, p, nil
	}
	d := math.Abs(float64(b-c)) - 1 // continuity correction
	stat = d * d / float64(n)
	return stat, chiSquare1Sf(stat), nil
}

func binomPMF(n, k int, p float64) float64 {
	// log-space for numeric safety
	lp := lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

func lchoose(n, k int) float64 {
	return lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// chiSquare1Sf returns the survival function of the chi-square
// distribution with one degree of freedom: P(X > x) = erfc(sqrt(x/2)).
func chiSquare1Sf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(math.Sqrt(x / 2))
}

// PairedPermutationTest estimates the p-value that the mean of
// per-example score differences (a[i]-b[i]) is zero, by random sign
// flips. Returns the two-sided p-value. Deterministic under seed.
func PairedPermutationTest(a, b []float64, permutations int, seed int64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: paired lengths differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 || permutations <= 0 {
		return 0, fmt.Errorf("eval: empty input or permutations=%d", permutations)
	}
	diffs := make([]float64, len(a))
	observed := 0.0
	for i := range a {
		diffs[i] = a[i] - b[i]
		observed += diffs[i]
	}
	observed = math.Abs(observed / float64(len(diffs)))
	rng := rand.New(rand.NewSource(seed))
	extreme := 0
	for p := 0; p < permutations; p++ {
		sum := 0.0
		for _, d := range diffs {
			if rng.Intn(2) == 0 {
				sum += d
			} else {
				sum -= d
			}
		}
		if math.Abs(sum/float64(len(diffs))) >= observed-1e-15 {
			extreme++
		}
	}
	return float64(extreme+1) / float64(permutations+1), nil
}

// MeanStd returns the mean and (population) standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
