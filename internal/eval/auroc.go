package eval

import (
	"fmt"
	"sort"
)

// AUROC computes the area under the ROC curve for binary labels
// (0/1) and real-valued scores where larger means "more positive".
// It uses the rank formulation (equivalent to the Mann–Whitney U
// statistic) with midrank tie handling. Returns an error when either
// class is absent, since AUROC is undefined then.
func AUROC(labels []int, scores []float64) (float64, error) {
	if len(labels) != len(scores) {
		return 0, fmt.Errorf("eval: %d labels vs %d scores", len(labels), len(scores))
	}
	nPos, nNeg := 0, 0
	for _, l := range labels {
		switch l {
		case 1:
			nPos++
		case 0:
			nNeg++
		default:
			return 0, fmt.Errorf("eval: AUROC label %d not in {0,1}", l)
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("eval: AUROC needs both classes (pos=%d neg=%d)", nPos, nNeg)
	}

	type item struct {
		score float64
		label int
	}
	items := make([]item, len(labels))
	for i := range labels {
		items[i] = item{scores[i], labels[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score < items[j].score })

	// Midranks over ties, then sum ranks of positives.
	ranks := make([]float64, len(items))
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	sumPos := 0.0
	for i, it := range items {
		if it.label == 1 {
			sumPos += ranks[i]
		}
	}
	u := sumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg)), nil
}

// AveragePrecision computes the area under the precision-recall
// curve (AP / AUPRC) for binary labels and scores where larger means
// "more positive", using the step-wise interpolation standard in IR:
// AP = Σ (R_i − R_{i−1}) · P_i over descending-score prefixes. For
// heavily imbalanced detection tasks this is more informative than
// AUROC. Ties are handled by processing equal scores as one block.
func AveragePrecision(labels []int, scores []float64) (float64, error) {
	if len(labels) != len(scores) {
		return 0, fmt.Errorf("eval: %d labels vs %d scores", len(labels), len(scores))
	}
	nPos := 0
	for _, l := range labels {
		switch l {
		case 1:
			nPos++
		case 0:
		default:
			return 0, fmt.Errorf("eval: AP label %d not in {0,1}", l)
		}
	}
	if nPos == 0 {
		return 0, fmt.Errorf("eval: AP needs at least one positive")
	}
	type item struct {
		score float64
		label int
	}
	items := make([]item, len(labels))
	for i := range labels {
		items[i] = item{scores[i], labels[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })

	ap := 0.0
	tp, fp := 0, 0
	prevRecall := 0.0
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].label == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		recall := float64(tp) / float64(nPos)
		precision := float64(tp) / float64(tp+fp)
		ap += (recall - prevRecall) * precision
		prevRecall = recall
		i = j
	}
	return ap, nil
}

// ROCPoint is one operating point of an ROC curve.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// ROCCurve returns the ROC operating points sweeping the threshold
// from +inf down through each distinct score. The first point is
// (0,0) and the last is (1,1).
func ROCCurve(labels []int, scores []float64) ([]ROCPoint, error) {
	if _, err := AUROC(labels, scores); err != nil {
		return nil, err
	}
	type item struct {
		score float64
		label int
	}
	items := make([]item, len(labels))
	for i := range labels {
		items[i] = item{scores[i], labels[i]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })

	nPos, nNeg := 0, 0
	for _, it := range items {
		if it.label == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	points := []ROCPoint{{FPR: 0, TPR: 0, Threshold: items[0].score + 1}}
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			if items[j].label == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, ROCPoint{
			FPR:       float64(fp) / float64(nNeg),
			TPR:       float64(tp) / float64(nPos),
			Threshold: items[i].score,
		})
		i = j
	}
	return points, nil
}
