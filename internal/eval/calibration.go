package eval

import "fmt"

// CalibrationBin summarizes one confidence bucket of a reliability
// diagram.
type CalibrationBin struct {
	Lo, Hi      float64 // confidence interval of the bin [Lo, Hi)
	MeanConf    float64 // mean predicted confidence in the bin
	FracCorrect float64 // empirical accuracy in the bin
	Count       int     // examples in the bin
}

// Calibration computes a reliability diagram and the expected
// calibration error (ECE) from per-example confidences (the
// probability assigned to the predicted class) and correctness
// flags. bins must be >= 1. Confidences must lie in [0,1].
func Calibration(confidences []float64, correct []bool, bins int) ([]CalibrationBin, float64, error) {
	if len(confidences) != len(correct) {
		return nil, 0, fmt.Errorf("eval: %d confidences vs %d outcomes", len(confidences), len(correct))
	}
	if bins < 1 {
		return nil, 0, fmt.Errorf("eval: bins = %d", bins)
	}
	out := make([]CalibrationBin, bins)
	for b := range out {
		out[b].Lo = float64(b) / float64(bins)
		out[b].Hi = float64(b+1) / float64(bins)
	}
	sumConf := make([]float64, bins)
	sumCorr := make([]int, bins)
	for i, c := range confidences {
		if c < 0 || c > 1 {
			return nil, 0, fmt.Errorf("eval: confidence %v out of [0,1]", c)
		}
		b := int(c * float64(bins))
		if b == bins {
			b = bins - 1 // c == 1.0 lands in the top bin
		}
		out[b].Count++
		sumConf[b] += c
		if correct[i] {
			sumCorr[b]++
		}
	}
	n := len(confidences)
	ece := 0.0
	for b := range out {
		if out[b].Count == 0 {
			continue
		}
		out[b].MeanConf = sumConf[b] / float64(out[b].Count)
		out[b].FracCorrect = float64(sumCorr[b]) / float64(out[b].Count)
		gap := out[b].MeanConf - out[b].FracCorrect
		if gap < 0 {
			gap = -gap
		}
		ece += gap * float64(out[b].Count) / float64(n)
	}
	return out, ece, nil
}
