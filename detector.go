package mhd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/domain"
	"repro/internal/lexicon"
	"repro/internal/llm"
	"repro/internal/pipeline"
	"repro/internal/prompting"
	"repro/internal/task"
	"repro/internal/textkit"
)

// Report is the screening result for one post.
type Report struct {
	// Condition is the most likely condition (Control when no
	// clinical signal was detected).
	Condition Disorder
	// Confidence is the probability assigned to Condition.
	Confidence float64
	// Scores maps every condition name to its probability.
	Scores map[string]float64
	// Risk grades suicide-risk severity regardless of Condition
	// (a depression post can still carry ideation language).
	Risk Severity
	// Evidence lists the lexicon phrases that drove the decision,
	// in first-occurrence order.
	Evidence []string
	// Crisis is set when suicide-risk severity is moderate or above;
	// consumers should route such posts to human review immediately.
	Crisis bool
}

// Detector screens social-media text for mental-health signals.
// Construct with NewDetector; Screen, ScreenBatch, and ScreenStream
// are safe for concurrent use.
type Detector struct {
	clf        task.Classifier
	fast       task.BatchPredictor // clf's tokenize-once fast path; nil when unsupported
	labels     []Disorder
	labelNames []string
	workers    int
	// scratch recycles per-call screen state for the single-post
	// Screen entry point, so even unbatched callers ride the
	// zero-allocation path once warm. Batch and stream carry their
	// own per-shard scratch instead (never contended, no pool trips).
	scratch sync.Pool
}

// detectorConfig collects NewDetector and NewRiskMonitor options.
type detectorConfig struct {
	engine     string // "baseline" or a model name from Models()
	seed       int64
	trainSize  int
	workers    int
	sessionTTL time.Duration // NewRiskMonitor only
	sessionCap int           // NewRiskMonitor only
}

// Option configures NewDetector.
type Option func(*detectorConfig)

// WithEngine selects the detection engine: "baseline" (the default —
// a logistic-regression classifier trained on the built-in
// multi-disorder corpus) or any simulated model name from Models()
// for zero-shot LLM prompting.
func WithEngine(engine string) Option {
	return func(c *detectorConfig) { c.engine = engine }
}

// WithSeed fixes the construction seed (default 1).
func WithSeed(seed int64) Option {
	return func(c *detectorConfig) { c.seed = seed }
}

// WithTrainingSize sets how many synthetic posts the baseline engine
// trains on (default 2400; ignored by LLM engines).
func WithTrainingSize(n int) Option {
	return func(c *detectorConfig) { c.trainSize = n }
}

// WithWorkers bounds the concurrency of ScreenBatch and ScreenStream
// (default GOMAXPROCS). Values <= 0 restore the default.
func WithWorkers(n int) Option {
	return func(c *detectorConfig) { c.workers = n }
}

// WithSessionTTL sets how long an idle early-risk session survives
// before eviction (default 30m). Used by NewRiskMonitor; ignored by
// NewDetector.
func WithSessionTTL(d time.Duration) Option {
	return func(c *detectorConfig) { c.sessionTTL = d }
}

// WithSessionCapacity bounds how many early-risk sessions may be
// live at once (default 65536); at capacity, the least recently
// observed session is shed to admit a new user. Used by
// NewRiskMonitor; ignored by NewDetector.
func WithSessionCapacity(n int) Option {
	return func(c *detectorConfig) { c.sessionCap = n }
}

// NewDetector builds a multi-condition screening detector.
func NewDetector(opts ...Option) (*Detector, error) {
	cfg := detectorConfig{engine: "baseline", seed: 1, trainSize: 2400}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.trainSize < 100 {
		return nil, fmt.Errorf("mhd: training size %d too small (need >= 100)", cfg.trainSize)
	}
	labels := domain.AllDisorders()
	labelNames := make([]string, len(labels))
	probs := make([]float64, len(labels))
	for i, d := range labels {
		labelNames[i] = d.String()
		probs[i] = (1 - 0.3) / float64(len(labels)-1)
	}
	probs[0] = 0.3 // control prior

	d := &Detector{labels: labels, labelNames: labelNames, workers: cfg.workers}
	switch cfg.engine {
	case "baseline":
		spec := corpus.Spec{
			Name: "detector-train", Kind: corpus.KindDisorder,
			Classes: labels, ClassProbs: probs,
			N: cfg.trainSize, Difficulty: 0.5, Seed: cfg.seed,
		}
		ds, err := spec.Build()
		if err != nil {
			return nil, err
		}
		clf := baseline.NewLogisticRegression(len(labels), baseline.LRConfig{Seed: cfg.seed})
		if err := clf.Fit(ds.Examples()); err != nil {
			return nil, err
		}
		d.clf = clf
	default:
		card, err := llm.LookupModel(cfg.engine)
		if err != nil {
			return nil, fmt.Errorf("mhd: engine must be \"baseline\" or a model name: %w", err)
		}
		client, err := llm.NewSimClient(card)
		if err != nil {
			return nil, err
		}
		clf, err := prompting.New(client, "which mental health condition, if any, the author shows signs of",
			labelNames, prompting.Config{Strategy: prompting.ZeroShot, Seed: cfg.seed})
		if err != nil {
			return nil, err
		}
		if err := clf.Fit(nil); err != nil {
			return nil, err
		}
		d.clf = clf
	}
	d.fast, _ = d.clf.(task.BatchPredictor)
	return d, nil
}

// screenScratch is per-shard reusable state for the screening hot
// path: token and match buffers grown once and reused across posts,
// plus the classifier's own scratch, so steady-state screening does
// not allocate per post beyond the Report itself. Ownership rule:
// a screenScratch belongs to exactly one worker shard (or to one
// pooled Screen call) at a time and is never shared concurrently.
type screenScratch struct {
	tokens  []string
	matches []lexicon.Match
	ps      task.Scratch // classifier scratch; nil when d.fast is nil
}

// newScratch builds scratch wired to the detector's classifier.
func (d *Detector) newScratch() *screenScratch {
	sc := &screenScratch{}
	if d.fast != nil {
		sc.ps = d.fast.NewScratch()
	}
	return sc
}

// Screen classifies one post and grades its suicide risk.
func (d *Detector) Screen(text string) (Report, error) {
	sc, _ := d.scratch.Get().(*screenScratch)
	if sc == nil {
		sc = d.newScratch()
	}
	rep, err := d.screen(text, sc)
	d.scratch.Put(sc)
	return rep, err
}

func (d *Detector) screen(text string, sc *screenScratch) (Report, error) {
	if text == "" {
		return Report{}, fmt.Errorf("mhd: empty text")
	}
	// Tokenize once: the same normalized word tokens feed both the
	// classifier's featurizer (via the fast path) and the condition
	// automaton below. The fused tokenizer skips materializing the
	// normalized string entirely.
	sc.tokens = textkit.AppendNormalizedWords(sc.tokens[:0], text)
	var pred task.Prediction
	var err error
	if d.fast != nil {
		pred, err = d.fast.PredictTokens(sc.tokens, sc.ps)
	} else {
		pred, err = d.clf.Predict(text)
	}
	if err != nil {
		return Report{}, err
	}
	rep := Report{Condition: Control, Scores: make(map[string]float64, len(d.labels))}
	if pred.Label >= 0 && pred.Label < len(d.labels) {
		rep.Condition = d.labels[pred.Label]
	}
	if len(pred.Scores) == len(d.labels) {
		for i, s := range pred.Scores {
			rep.Scores[d.labelNames[i]] = s
		}
		if pred.Label >= 0 {
			rep.Confidence = pred.Scores[pred.Label]
		}
		// Screening guardrail: do not assert a clinical condition
		// that barely beats the control hypothesis — low-margin
		// calls fall back to Control (the report still carries the
		// full score distribution for downstream ranking).
		if rep.Condition != Control && rep.Confidence-pred.Scores[0] < 0.05 {
			rep.Condition = Control
			rep.Confidence = pred.Scores[0]
		}
	}

	// Risk grading and evidence are lexicon-grounded so they remain
	// auditable regardless of the engine. One pass over the shared
	// condition automaton — over the token slice already computed
	// above — yields the matches of every lexicon at once; risk score
	// and evidence lists are then derived without re-scanning.
	ca := lexicon.Conditions()
	sc.matches = ca.AppendMatches(sc.matches[:0], sc.tokens)
	siLex := ca.Index(SuicidalIdeation)
	rep.Risk = gradeRisk(sc.matches, siLex, len(sc.tokens))
	rep.Crisis = rep.Risk >= SeverityModerate
	if rep.Condition != Control {
		rep.Evidence = lexicon.AppendHitsOf(nil, sc.matches, ca.Index(rep.Condition))
		// Auditability invariant: a clinical call must cite at least
		// one lexicon phrase; otherwise it degrades to Control (the
		// score distribution still records the model's suspicion).
		if len(rep.Evidence) == 0 {
			rep.Condition = Control
			if len(pred.Scores) == len(d.labels) {
				rep.Confidence = pred.Scores[0]
			}
		}
	}
	if rep.Risk > SeverityNone {
		siHits := lexicon.AppendHitsOf(nil, sc.matches, siLex)
		rep.Evidence = mergeEvidence(rep.Evidence, siHits)
	}
	return rep, nil
}

// riskThresholds are the SI-score cut points between severity
// levels, the midpoints of the generator-calibrated bands.
var riskThresholds = [...]float64{0.05, 0.15, 0.38}

func gradeRisk(matches []lexicon.Match, siLex, ntokens int) Severity {
	s := lexicon.ScoreOf(matches, siLex, ntokens)
	switch {
	case s < riskThresholds[0]:
		return SeverityNone
	case s < riskThresholds[1]:
		return SeverityLow
	case s < riskThresholds[2]:
		return SeverityModerate
	default:
		return SeveritySevere
	}
}

// mergeEvidence concatenates a then b, dropping duplicates while
// preserving first-occurrence order. Evidence lists are a handful of
// lexicon phrases, so the linear dedup scan over out beats hashing:
// the whole merge costs exactly one allocation (the output slice).
func mergeEvidence(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	appendNew := func(ss []string) {
		for _, s := range ss {
			dup := false
			for _, t := range out {
				if t == s {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, s)
			}
		}
	}
	appendNew(a)
	appendNew(b)
	return out
}

// poolWorkers resolves the configured batch/stream concurrency.
func (d *Detector) poolWorkers() int {
	if d.workers > 0 {
		return d.workers
	}
	return runtime.GOMAXPROCS(0)
}

// PostError reports which post of a batch or stream failed.
type PostError struct {
	Post int // index into the batch / stream sequence
	Err  error
}

func (e *PostError) Error() string { return fmt.Sprintf("mhd: post %d: %v", e.Post, e.Err) }

func (e *PostError) Unwrap() error { return e.Err }

// ScreenBatch screens every post concurrently on a bounded worker
// pool and returns the reports in input order. Each worker keeps
// private scratch buffers, so throughput scales with GOMAXPROCS (cap
// with WithWorkers). The first failing post cancels the rest and is
// reported as a *PostError.
func (d *Detector) ScreenBatch(texts []string) ([]Report, error) {
	return d.ScreenBatchContext(context.Background(), texts)
}

// ScreenBatchContext is ScreenBatch with cancellation: if ctx is
// cancelled mid-batch the remaining posts are abandoned and ctx's
// error is returned.
func (d *Detector) ScreenBatchContext(ctx context.Context, texts []string) ([]Report, error) {
	workers := d.poolWorkers()
	scratch := make([]*screenScratch, workers)
	for i := range scratch {
		scratch[i] = d.newScratch()
	}
	reports, err := pipeline.Map(ctx, texts, pipeline.Config{Workers: workers},
		func(shard int, text string) (Report, error) {
			return d.screen(text, scratch[shard])
		})
	var ie *pipeline.ItemError
	if errors.As(err, &ie) {
		return nil, &PostError{Post: ie.Index, Err: ie.Err}
	}
	return reports, err
}

// StreamReport pairs one streamed post with its report. Err is
// per-post: a failing post does not stop the stream.
type StreamReport struct {
	// Index is the post's position in the input stream, starting at
	// 0. Results are always delivered in increasing Index order.
	Index  int
	Text   string
	Report Report
	Err    error
}

// ScreenStream screens posts read from posts on a bounded worker
// pool and delivers reports on the returned channel in input order.
// The channel closes when posts is closed and all reports are
// delivered, or when ctx is cancelled (check ctx.Err() to tell the
// two apart). Consumers must drain the channel or cancel ctx.
func (d *Detector) ScreenStream(ctx context.Context, posts <-chan string) <-chan StreamReport {
	workers := d.poolWorkers()
	scratch := make([]*screenScratch, workers)
	for i := range scratch {
		scratch[i] = d.newScratch()
	}
	type screened struct {
		text string
		rep  Report
	}
	results := pipeline.Stream(ctx, posts, pipeline.Config{Workers: workers},
		func(shard int, text string) (screened, error) {
			rep, err := d.screen(text, scratch[shard])
			return screened{text: text, rep: rep}, err
		})
	out := make(chan StreamReport)
	go func() {
		defer close(out)
		for r := range results {
			sr := StreamReport{Index: r.Index, Text: r.Value.text, Report: r.Value.rep, Err: r.Err}
			select {
			case out <- sr:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Triage screens a batch of posts concurrently and returns the
// indices of posts ordered by descending risk (crisis posts first,
// then by severity, then by clinical confidence).
func (d *Detector) Triage(posts []string) ([]int, []Report, error) {
	reports, err := d.ScreenBatch(posts)
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, len(posts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reports[order[a]], reports[order[b]]
		if ra.Risk != rb.Risk {
			return ra.Risk > rb.Risk
		}
		aClin := ra.Condition != Control
		bClin := rb.Condition != Control
		if aClin != bClin {
			return aClin
		}
		return ra.Confidence > rb.Confidence
	})
	return order, reports, nil
}
