package mhd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/cascade"
	"repro/internal/corpus"
	"repro/internal/domain"
	"repro/internal/drift"
	"repro/internal/lexicon"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prompting"
	"repro/internal/task"
	"repro/internal/textkit"
)

// Report is the screening result for one post.
type Report struct {
	// Condition is the most likely condition (Control when no
	// clinical signal was detected).
	Condition Disorder
	// Confidence is the probability assigned to Condition.
	Confidence float64
	// Scores maps every condition name to its probability.
	Scores map[string]float64
	// Risk grades suicide-risk severity regardless of Condition
	// (a depression post can still carry ideation language).
	Risk Severity
	// Evidence lists the lexicon phrases that drove the decision,
	// in first-occurrence order.
	Evidence []string
	// Crisis is set when suicide-risk severity is moderate or above;
	// consumers should route such posts to human review immediately.
	Crisis bool
	// Adjudicated is set by the cascade path when the condition
	// verdict came from the LLM adjudicator rather than the stage-1
	// classifier (see ScreenCascade).
	Adjudicated bool
	// HardeningRewrites counts how many characters the adversarial
	// hardening pass rewrote before featurization (homoglyphs folded,
	// zero-width characters stripped, leet canonicalized, emoji
	// mapped). Always 0 unless WithHardening is enabled.
	HardeningRewrites int
	// Suspicious is set when HardeningRewrites reaches the configured
	// suspicion threshold (WithSuspicionThreshold) — the post was
	// likely obfuscated deliberately. The cascade path routes such
	// posts to the adjudicator within a bounded budget
	// (WithSuspicionBudget) even when stage-1 confidence is outside
	// the uncertainty band.
	Suspicious bool
}

// Detector screens social-media text for mental-health signals.
// Construct with NewDetector; Screen, ScreenBatch, and ScreenStream
// are safe for concurrent use.
type Detector struct {
	clf        task.Classifier
	fast       task.BatchPredictor // clf's tokenize-once fast path; nil when unsupported
	labels     []Disorder
	labelNames []string
	workers    int

	// Training provenance, kept for artifact export (SaveModel) and
	// the held-out reference-score corpus (ReferenceScores).
	engine    string
	seed      int64
	trainSize int
	probs     []float64

	// Cascade state; all nil/zero unless WithAdjudicator configured
	// one (see ScreenCascade). cal is behind an atomic pointer so the
	// periodic refit (RefitCalibration) can swap it under live
	// traffic without a lock on the screening path.
	cal       atomic.Pointer[baseline.PlattScaler] // stage-1 confidence calibration
	calLabels *drift.LabelBuffer                   // adjudication verdicts as free refit labels
	band      cascade.Band                         // calibrated uncertainty band
	adjPool   *cascade.Pool                        // bounded LLM adjudicator pool
	adjClf    *prompting.Classifier                // adjudicator, kept for usage accounting

	// Adversarial hardening state; zero unless WithHardening.
	harden        bool
	suspicionK    int     // rewrites >= K flags the post suspicious
	suspicionRate float64 // cascade budget for suspicion escalations
	// scratch recycles per-call screen state across Screen, batch, and
	// cascade entry points, so both unbatched callers and repeat
	// batchers (the serving coalescer) ride warm buffers. Streams keep
	// private per-shard scratch for their lifetime instead.
	scratch sync.Pool
}

// detectorConfig collects NewDetector and NewRiskMonitor options.
type detectorConfig struct {
	engine         string // "baseline" or a model name from Models()
	seed           int64
	trainSize      int
	workers        int
	sessionTTL     time.Duration // NewRiskMonitor only
	sessionCap     int           // NewRiskMonitor only
	sessionWALDir  string        // NewRiskMonitor only: "" disables the WAL
	sessionWALSync string        // NewRiskMonitor only: -wal-sync spelling
	sessionCkpt    time.Duration // NewRiskMonitor only: checkpoint cadence
	sessionLogger  *obs.Logger   // NewRiskMonitor only: durability warnings
	adjModel       string        // cascade adjudicator model; "" disables
	band           cascade.Band  // cascade uncertainty band
	adjudicators   int           // cascade pool size
	harden         bool          // adversarial text hardening
	suspicionK     int           // hardening rewrites that flag suspicion
	suspicion      float64       // cascade suspicion escalation budget
	quantBits      int           // weight quantization width; 0 keeps float
}

// Option configures NewDetector.
type Option func(*detectorConfig)

// WithEngine selects the detection engine: "baseline" (the default —
// a logistic-regression classifier trained on the built-in
// multi-disorder corpus) or any simulated model name from Models()
// for zero-shot LLM prompting.
func WithEngine(engine string) Option {
	return func(c *detectorConfig) { c.engine = engine }
}

// WithSeed fixes the construction seed (default 1).
func WithSeed(seed int64) Option {
	return func(c *detectorConfig) { c.seed = seed }
}

// WithTrainingSize sets how many synthetic posts the baseline engine
// trains on (default 2400; ignored by LLM engines).
func WithTrainingSize(n int) Option {
	return func(c *detectorConfig) { c.trainSize = n }
}

// WithWorkers bounds the concurrency of ScreenBatch and ScreenStream
// (default GOMAXPROCS). Values <= 0 restore the default.
func WithWorkers(n int) Option {
	return func(c *detectorConfig) { c.workers = n }
}

// WithSessionTTL sets how long an idle early-risk session survives
// before eviction (default 30m). Used by NewRiskMonitor; ignored by
// NewDetector.
func WithSessionTTL(d time.Duration) Option {
	return func(c *detectorConfig) { c.sessionTTL = d }
}

// WithSessionCapacity bounds how many early-risk sessions may be
// live at once (default 65536); at capacity, the least recently
// observed session is shed to admit a new user. Used by
// NewRiskMonitor; ignored by NewDetector.
func WithSessionCapacity(n int) Option {
	return func(c *detectorConfig) { c.sessionCap = n }
}

// WithSessionWAL makes the session store crash-safe: observations are
// written ahead to per-shard logs under dir, checkpointed in the
// background, and replayed by NewRiskMonitor at construction, so an
// ungraceful exit loses at most the current sync window instead of
// every session since boot. Used by NewRiskMonitor; ignored by
// NewDetector. Call Close on the monitor at shutdown to flush the
// logs.
func WithSessionWAL(dir string) Option {
	return func(c *detectorConfig) { c.sessionWALDir = dir }
}

// WithSessionWALSync selects the WAL sync policy: "always" (fsync per
// observation), "never" (no fsync), "group" — the default — for group
// commit at the default interval, or a Go duration like "5ms" for
// group commit at that interval. Only meaningful with WithSessionWAL.
func WithSessionWALSync(policy string) Option {
	return func(c *detectorConfig) { c.sessionWALSync = policy }
}

// WithSessionCheckpointInterval sets the background checkpoint
// cadence (default 1m; negative disables periodic checkpoints). Only
// meaningful with WithSessionWAL.
func WithSessionCheckpointInterval(d time.Duration) Option {
	return func(c *detectorConfig) { c.sessionCkpt = d }
}

// WithSessionLogger routes rate-limited session durability warnings
// (WAL degradation, checkpoint failures, recovery truncations) to l.
// Only meaningful with WithSessionWAL; a nil logger disables logging.
func WithSessionLogger(l *obs.Logger) Option {
	return func(c *detectorConfig) { c.sessionLogger = l }
}

// Band is the cascade's uncertainty interval on calibrated
// correctness probability; re-exported from the cascade engine. A
// stage-1 verdict whose calibrated probability of being correct falls
// inside [Lo, Hi] is escalated to the LLM adjudicator.
type Band = cascade.Band

// ParseBand parses a "lo,hi" flag value (e.g. "0.15,0.85") into a
// validated Band.
func ParseBand(s string) (Band, error) { return cascade.ParseBand(s) }

// DefaultBand is the uncertainty band WithAdjudicator uses unless
// WithBand overrides it. The ceiling is chosen so that on the
// built-in synthetic corpora roughly the least-confident fifth of
// verdicts escalate; the floor of 0 means even hopeless stage-1
// verdicts get a second opinion.
var DefaultBand = Band{Lo: 0, Hi: 0.74}

// CascadeStats summarizes one ScreenCascade call: how many posts
// completed stage 1, how many escalated, and of those how many took
// the adjudicator's verdict vs. fell back to stage 1; re-exported
// from the cascade engine.
type CascadeStats = cascade.Stats

// WithAdjudicator arms the screening cascade: posts whose calibrated
// stage-1 confidence falls inside the uncertainty band (WithBand) are
// escalated to a bounded pool (WithAdjudicators) of chain-of-thought
// LLM adjudications on the named model (any name from Models()).
// Construction additionally fits a Platt calibration of the stage-1
// classifier on a held-out synthetic split, so the band is a
// probability interval over "is this verdict correct". Use
// ScreenCascade / ScreenCascadeContext to screen through the cascade;
// Screen and ScreenBatch remain stage-1 only.
func WithAdjudicator(model string) Option {
	return func(c *detectorConfig) { c.adjModel = model }
}

// WithBand overrides the cascade's uncertainty band (default
// DefaultBand). Only meaningful together with WithAdjudicator.
func WithBand(lo, hi float64) Option {
	return func(c *detectorConfig) { c.band = Band{Lo: lo, Hi: hi} }
}

// WithAdjudicators bounds how many LLM adjudications may run
// concurrently (default 4). Only meaningful together with
// WithAdjudicator.
func WithAdjudicators(n int) Option {
	return func(c *detectorConfig) { c.adjudicators = n }
}

// WithHardening enables adversarial text hardening: before
// featurization every post passes the textkit Harden canonicalization
// (Unicode homoglyphs folded to ASCII, zero-width characters and
// combining marks stripped, leet digits mapped back to letters,
// sentiment emoji expanded to words), so obfuscated posts hit the
// same classifier features and lexicon evidence as their clean
// spellings. Reports carry how many characters were rewritten
// (Report.HardeningRewrites) and whether that crossed the suspicion
// threshold (Report.Suspicious). The hardened path keeps the
// zero-allocation fast path: rewritten fields are memoized per worker
// and clean fields still alias the input.
func WithHardening() Option {
	return func(c *detectorConfig) { c.harden = true }
}

// WithSuspicionThreshold sets how many hardening rewrites flag a post
// as Suspicious (default 4; values < 1 are rejected). Only meaningful
// together with WithHardening.
func WithSuspicionThreshold(k int) Option {
	return func(c *detectorConfig) { c.suspicionK = k }
}

// WithSuspicionBudget bounds, as a fraction of the batch, how many
// suspicious posts one ScreenCascade call may escalate to the
// adjudicator on suspicion alone (default 0.25; must be in [0, 1]).
// The bound is what keeps an adversary who obfuscates every post from
// routing the whole batch to the expensive adjudicator. Only
// meaningful together with WithHardening and WithAdjudicator.
func WithSuspicionBudget(rate float64) Option {
	return func(c *detectorConfig) { c.suspicion = rate }
}

// WithQuantization compresses the baseline engine's trained weight
// matrix to the given integer width — 8 (int8) or 16 (int16) bits —
// shrinking it 8x or 4x so more of it stays cache-resident on the
// inference fast path. This is an escape hatch, off by default: the
// float path stays the reference oracle (the quantization fuzz test
// pins the quantized scores to it within the documented error
// contract — at most scale/2 * ||x||_1 per class pre-softmax, where
// scale is max|w|/(2^(bits-1)-1)). Reports may differ from the float
// path in Scores/Confidence by up to that bound; lexicon-grounded
// fields (Risk, Crisis, Evidence) are unaffected. Only meaningful
// with the baseline engine; NewDetector rejects it on LLM engines.
func WithQuantization(bits int) Option {
	return func(c *detectorConfig) { c.quantBits = bits }
}

// NewDetector builds a multi-condition screening detector.
func NewDetector(opts ...Option) (*Detector, error) {
	cfg := detectorConfig{engine: "baseline", seed: 1, trainSize: 2400,
		band: DefaultBand, adjudicators: 4, suspicionK: 4, suspicion: 0.25}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.trainSize < 100 {
		return nil, fmt.Errorf("mhd: training size %d too small (need >= 100)", cfg.trainSize)
	}
	if cfg.harden {
		if cfg.suspicionK < 1 {
			return nil, fmt.Errorf("mhd: suspicion threshold %d must be >= 1", cfg.suspicionK)
		}
		if cfg.suspicion < 0 || cfg.suspicion > 1 {
			return nil, fmt.Errorf("mhd: suspicion budget %g must be in [0, 1]", cfg.suspicion)
		}
	}
	labels := domain.AllDisorders()
	labelNames := make([]string, len(labels))
	probs := make([]float64, len(labels))
	for i, d := range labels {
		labelNames[i] = d.String()
		probs[i] = (1 - 0.3) / float64(len(labels)-1)
	}
	probs[0] = 0.3 // control prior

	d := &Detector{labels: labels, labelNames: labelNames, workers: cfg.workers,
		engine: cfg.engine, seed: cfg.seed, trainSize: cfg.trainSize, probs: probs,
		harden: cfg.harden, suspicionK: cfg.suspicionK, suspicionRate: cfg.suspicion}
	switch cfg.engine {
	case "baseline":
		spec := corpus.Spec{
			Name: "detector-train", Kind: corpus.KindDisorder,
			Classes: labels, ClassProbs: probs,
			N: cfg.trainSize, Difficulty: 0.5, Seed: cfg.seed,
		}
		ds, err := spec.Build()
		if err != nil {
			return nil, err
		}
		clf := baseline.NewLogisticRegression(len(labels), baseline.LRConfig{Seed: cfg.seed})
		if err := clf.Fit(ds.Examples()); err != nil {
			return nil, err
		}
		if cfg.quantBits != 0 {
			if err := clf.EnableQuantization(cfg.quantBits); err != nil {
				return nil, fmt.Errorf("mhd: %w", err)
			}
		}
		d.clf = clf
	default:
		if cfg.quantBits != 0 {
			return nil, fmt.Errorf("mhd: quantization requires the baseline engine")
		}
		card, err := llm.LookupModel(cfg.engine)
		if err != nil {
			return nil, fmt.Errorf("mhd: engine must be \"baseline\" or a model name: %w", err)
		}
		client, err := llm.NewSimClient(card)
		if err != nil {
			return nil, err
		}
		clf, err := prompting.New(client, "which mental health condition, if any, the author shows signs of",
			labelNames, prompting.Config{Strategy: prompting.ZeroShot, Seed: cfg.seed})
		if err != nil {
			return nil, err
		}
		if err := clf.Fit(nil); err != nil {
			return nil, err
		}
		d.clf = clf
	}
	d.fast, _ = d.clf.(task.BatchPredictor)
	if cfg.adjModel != "" {
		if err := d.armCascade(cfg, probs); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// calibrationSize is how many held-out synthetic posts the cascade's
// Platt calibration is fitted on. Big enough for a stable sigmoid,
// small enough that arming the cascade stays sub-second.
const calibrationSize = 600

// armCascade builds the adjudicator pool and fits the stage-1
// confidence calibration on a held-out split (a corpus seeded apart
// from the training one, so the calibration measures generalization
// rather than training fit).
func (d *Detector) armCascade(cfg detectorConfig, probs []float64) error {
	if err := cfg.band.Validate(); err != nil {
		return fmt.Errorf("mhd: %w", err)
	}
	if cfg.adjudicators <= 0 {
		return fmt.Errorf("mhd: adjudicator pool size %d must be positive", cfg.adjudicators)
	}
	card, err := llm.LookupModel(cfg.adjModel)
	if err != nil {
		return fmt.Errorf("mhd: adjudicator must be a model name: %w", err)
	}
	client, err := llm.NewSimClient(card)
	if err != nil {
		return err
	}
	adj, err := prompting.New(client, "which mental health condition, if any, the author shows signs of",
		d.labelNames, prompting.Config{Strategy: prompting.ChainOfThought, Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := adj.Fit(nil); err != nil {
		return err
	}
	pool, err := cascade.NewPool(adj, cfg.adjudicators)
	if err != nil {
		return err
	}

	spec := corpus.Spec{
		Name: "detector-cal", Kind: corpus.KindDisorder,
		Classes: d.labels, ClassProbs: probs,
		N: calibrationSize, Difficulty: 0.5, Seed: cfg.seed + 7919,
	}
	ds, err := spec.Build()
	if err != nil {
		return err
	}
	exs := ds.Examples()
	confs := make([]float64, 0, len(exs))
	correct := make([]bool, 0, len(exs))
	for _, ex := range exs {
		pred, err := d.clf.Predict(ex.Text)
		if err != nil {
			return fmt.Errorf("mhd: calibration predict: %w", err)
		}
		top := 0.0
		for _, s := range pred.Scores {
			if s > top {
				top = s
			}
		}
		confs = append(confs, top)
		correct = append(correct, pred.Label == ex.Label)
	}
	cal, err := baseline.FitPlatt(confs, correct)
	if err != nil && !errors.Is(err, baseline.ErrDegenerateCalibration) {
		return fmt.Errorf("mhd: fitting calibration: %w", err)
	}
	// A degenerate calibration split (possible at tiny training sizes
	// where the stage-1 model gets every held-out example right) hands
	// back the identity fallback: the cascade still runs, banding on
	// raw confidences.
	d.cal.Store(cal)
	d.calLabels = drift.NewLabelBuffer(calLabelWindow)
	d.band = cfg.band
	d.adjPool = pool
	d.adjClf = adj
	return nil
}

// calLabelWindow bounds the adjudication-verdict label buffer the
// periodic calibration refit consumes. Sized a few times larger than
// calibrationSize so a refit sees at least as much evidence as the
// boot-time fit once traffic has warmed up.
const calLabelWindow = 4096

// HasCascade reports whether WithAdjudicator armed the cascade.
func (d *Detector) HasCascade() bool { return d.adjPool != nil }

// CascadeBand returns the armed cascade's uncertainty band (zero
// Band when no cascade is configured).
func (d *Detector) CascadeBand() Band { return d.band }

// AdjudicatorUsage returns the cumulative token/cost accounting of
// the LLM adjudicator since construction (zero Usage when no cascade
// is configured).
func (d *Detector) AdjudicatorUsage() llm.Usage {
	if d.adjClf == nil {
		return llm.Usage{}
	}
	return d.adjClf.Usage()
}

// screenScratch is per-shard reusable state for the screening hot
// path: token and match buffers grown once and reused across posts,
// plus the classifier's own scratch, so steady-state screening does
// not allocate per post beyond the Report itself. Ownership rule:
// a screenScratch belongs to exactly one worker shard (or to one
// pooled Screen call) at a time and is never shared concurrently.
type screenScratch struct {
	tokens   []string
	matches  []lexicon.Match
	evidence []string          // per-post evidence staging arena
	ps       task.Scratch      // classifier scratch; nil when d.fast is nil
	hard     *textkit.Hardener // hardening memo; nil unless WithHardening

	// Micro-batch chunk state (screenChunk): the chunk's posts
	// tokenize into the shared tokens arena with per-post windows in
	// views, so one PredictTokensBatch call scores the whole chunk.
	views         [][]string
	chunkRewrites []int
	chunkSpans    []*obs.Span
}

// newScratch builds scratch wired to the detector's classifier.
func (d *Detector) newScratch() *screenScratch {
	sc := &screenScratch{}
	if d.fast != nil {
		sc.ps = d.fast.NewScratch()
	}
	if d.harden {
		sc.hard = &textkit.Hardener{}
	}
	return sc
}

// Screen classifies one post and grades its suicide risk.
func (d *Detector) Screen(text string) (Report, error) {
	sc, _ := d.scratch.Get().(*screenScratch)
	if sc == nil {
		sc = d.newScratch()
	}
	rep, _, err := d.screen(text, sc, nil)
	d.scratch.Put(sc)
	return rep, err
}

// screen is the stage-1 hot path. Besides the report it returns the
// classifier's raw top-class confidence — the pre-guardrail maximum
// softmax score — which the cascade calibrates to decide escalation
// (the Report's own Confidence may have been remapped to the control
// class by the guardrails below and is useless for routing).
// sp, when non-nil, is this post's trace span; the hardening pass is
// recorded as a "harden" child. A nil span keeps the path
// zero-allocation.
func (d *Detector) screen(text string, sc *screenScratch, sp *obs.Span) (Report, float64, error) {
	if text == "" {
		return Report{}, 0, errEmptyText
	}
	toks, rewrites := d.tokenize(sc.tokens[:0], text, sc, sp)
	sc.tokens = toks
	var pred task.Prediction
	var err error
	if d.fast != nil {
		pred, err = d.fast.PredictTokens(toks, sc.ps)
	} else {
		pred, err = d.clf.Predict(text)
	}
	if err != nil {
		return Report{}, 0, err
	}
	rep, top := d.finishReport(toks, pred, rewrites, sc)
	return rep, top, nil
}

var errEmptyText = errors.New("mhd: empty text")

// tokenize appends text's normalized word tokens to dst and reports
// how many characters the hardening pass rewrote (always 0 without
// WithHardening). The same token slice feeds both the classifier's
// featurizer (via the fast path) and the condition automaton, and the
// fused tokenizer skips materializing the normalized string entirely.
// In hardened mode the fused hardening tokenizer additionally
// canonicalizes obfuscation (homoglyphs, zero-width, leet, emoji) and
// the pass is recorded as a "harden" child of sp when tracing.
func (d *Detector) tokenize(dst []string, text string, sc *screenScratch, sp *obs.Span) ([]string, int) {
	if sc.hard != nil {
		hsp := sp.Child("harden")
		toks, rewrites := sc.hard.AppendNormalizedWords(dst, text)
		hsp.End()
		return toks, rewrites
	}
	return textkit.AppendNormalizedWords(dst, text), 0
}

// finishReport turns one post's prediction into its Report: score-map
// fill, the control-margin guardrail, lexicon-grounded risk grading
// and evidence. It is shared verbatim by the per-post and micro-batch
// paths, which is what keeps batched Reports bit-identical to
// unbatched ones. The returned float64 is the classifier's raw
// top-class confidence (pre-guardrail max softmax score), which the
// cascade calibrates for escalation routing.
func (d *Detector) finishReport(toks []string, pred task.Prediction, rewrites int, sc *screenScratch) (Report, float64) {
	top := 0.0
	for _, s := range pred.Scores {
		if s > top {
			top = s
		}
	}
	rep := Report{Condition: Control, Scores: make(map[string]float64, len(d.labels)),
		HardeningRewrites: rewrites, Suspicious: sc.hard != nil && rewrites >= d.suspicionK}
	if pred.Label >= 0 && pred.Label < len(d.labels) {
		rep.Condition = d.labels[pred.Label]
	}
	if len(pred.Scores) == len(d.labels) {
		for i, s := range pred.Scores {
			rep.Scores[d.labelNames[i]] = s
		}
		if pred.Label >= 0 {
			rep.Confidence = pred.Scores[pred.Label]
		}
		// Screening guardrail: do not assert a clinical condition
		// that barely beats the control hypothesis — low-margin
		// calls fall back to Control (the report still carries the
		// full score distribution for downstream ranking).
		if rep.Condition != Control && rep.Confidence-pred.Scores[0] < 0.05 {
			rep.Condition = Control
			rep.Confidence = pred.Scores[0]
		}
	}

	// Risk grading and evidence are lexicon-grounded so they remain
	// auditable regardless of the engine. One pass over the shared
	// condition automaton — over the token slice already computed by
	// the caller — yields the matches of every lexicon at once; risk
	// score and evidence lists are then derived without re-scanning.
	// Evidence stages through sc.evidence (condition hits, then SI
	// hits deduplicated against them in first-occurrence order) so the
	// whole evidence build costs exactly one allocation — the final
	// exact-size copy into the Report.
	ca := lexicon.Conditions()
	sc.matches = ca.AppendMatches(sc.matches[:0], toks)
	siLex := ca.Index(SuicidalIdeation)
	rep.Risk = gradeRisk(sc.matches, siLex, len(toks))
	rep.Crisis = rep.Risk >= SeverityModerate
	ev := sc.evidence[:0]
	if rep.Condition != Control {
		ev = lexicon.AppendHitsOf(ev, sc.matches, ca.Index(rep.Condition))
		// Auditability invariant: a clinical call must cite at least
		// one lexicon phrase; otherwise it degrades to Control (the
		// score distribution still records the model's suspicion).
		if len(ev) == 0 {
			rep.Condition = Control
			if len(pred.Scores) == len(d.labels) {
				rep.Confidence = pred.Scores[0]
			}
		}
	}
	if rep.Risk > SeverityNone {
		ev = appendDedup(ev, sc.matches, siLex)
	}
	sc.evidence = ev
	if len(ev) > 0 {
		rep.Evidence = make([]string, len(ev))
		copy(rep.Evidence, ev)
	}
	return rep, top
}

// appendDedup appends lexicon lex's hit phrases to ev, dropping any
// phrase already present — mergeEvidence's semantics on the staging
// arena, without its intermediate allocations. Hit lists are a
// handful of phrases, so the linear containment scan beats hashing.
func appendDedup(ev []string, matches []lexicon.Match, lex int) []string {
	n0 := len(ev)
	ev = lexicon.AppendHitsOf(ev, matches, lex)
	w := n0
	for r := n0; r < len(ev); r++ {
		dup := false
		for _, t := range ev[:w] {
			if t == ev[r] {
				dup = true
				break
			}
		}
		if !dup {
			ev[w] = ev[r]
			w++
		}
	}
	return ev[:w]
}

// riskThresholds are the SI-score cut points between severity
// levels, the midpoints of the generator-calibrated bands.
var riskThresholds = [...]float64{0.05, 0.15, 0.38}

func gradeRisk(matches []lexicon.Match, siLex, ntokens int) Severity {
	s := lexicon.ScoreOf(matches, siLex, ntokens)
	switch {
	case s < riskThresholds[0]:
		return SeverityNone
	case s < riskThresholds[1]:
		return SeverityLow
	case s < riskThresholds[2]:
		return SeverityModerate
	default:
		return SeveritySevere
	}
}

// mergeEvidence concatenates a then b, dropping duplicates while
// preserving first-occurrence order. Evidence lists are a handful of
// lexicon phrases, so the linear dedup scan over out beats hashing:
// the whole merge costs exactly one allocation (the output slice).
func mergeEvidence(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	appendNew := func(ss []string) {
		for _, s := range ss {
			dup := false
			for _, t := range out {
				if t == s {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, s)
			}
		}
	}
	appendNew(a)
	appendNew(b)
	return out
}

// poolWorkers resolves the configured batch/stream concurrency.
func (d *Detector) poolWorkers() int {
	if d.workers > 0 {
		return d.workers
	}
	return runtime.GOMAXPROCS(0)
}

// PostError reports which post of a batch or stream failed.
type PostError struct {
	Post int // index into the batch / stream sequence
	Err  error
}

func (e *PostError) Error() string { return fmt.Sprintf("mhd: post %d: %v", e.Post, e.Err) }

func (e *PostError) Unwrap() error { return e.Err }

// ScreenBatch screens every post concurrently on a bounded worker
// pool and returns the reports in input order. Each worker keeps
// private scratch buffers, so throughput scales with GOMAXPROCS (cap
// with WithWorkers). The first failing post cancels the rest and is
// reported as a *PostError.
func (d *Detector) ScreenBatch(texts []string) ([]Report, error) {
	return d.ScreenBatchContext(context.Background(), texts)
}

// screenMicroBatch is how many posts one batch-major kernel call
// scores. Large enough that the gathered feature sweep amortizes the
// weight-matrix traffic (a feature active in k posts of the chunk
// costs one cache-line fill instead of k), small enough that a
// coalescer-sized batch still fans out across every worker shard.
const screenMicroBatch = 32

// ScreenBatchContext is ScreenBatch with cancellation: if ctx is
// cancelled mid-batch the remaining posts are abandoned and ctx's
// error is returned.
//
// When the engine exposes the tokenize-once fast path, the batch is
// chunked into micro-batches of screenMicroBatch posts and each chunk
// is scored by one batch-major kernel call (task.BatchPredictor.
// PredictTokensBatch); reports are bit-identical to the per-post path
// — the kernel contract plus the shared finishReport guarantee it,
// and the race-mode property tests pin it.
func (d *Detector) ScreenBatchContext(ctx context.Context, texts []string) ([]Report, error) {
	workers := d.poolWorkers()
	// Per-shard scratch comes from (and returns to) the detector's
	// pool, so a caller that batches repeatedly — the serving
	// coalescer above all — reuses warm kernel arenas instead of
	// regrowing gather/score buffers from zero on every batch.
	scratch := make([]*screenScratch, workers)
	for i := range scratch {
		sc, _ := d.scratch.Get().(*screenScratch)
		if sc == nil {
			sc = d.newScratch()
		}
		scratch[i] = sc
	}
	defer func() {
		for _, sc := range scratch {
			d.scratch.Put(sc)
		}
	}()
	// Per-item trace spans, when the caller (the serving coalescer)
	// attached any to ctx: each post's screening is recorded as a
	// "screen" span on that post's request trace.
	spans := obs.BatchFromContext(ctx)
	if d.fast == nil || len(texts) < 2 {
		// LLM engines have no token kernel; a lone post gains nothing
		// from chunking. Screen post-by-post as before.
		reports, err := pipeline.MapIndexed(ctx, texts, pipeline.Config{Workers: workers},
			func(shard, i int, text string) (Report, error) {
				sp := spans.At(i).Child("screen")
				rep, _, err := d.screen(text, scratch[shard], sp)
				sp.End()
				return rep, err
			})
		var ie *pipeline.ItemError
		if errors.As(err, &ie) {
			return nil, &PostError{Post: ie.Index, Err: ie.Err}
		}
		return reports, err
	}

	starts := make([]int, (len(texts)+screenMicroBatch-1)/screenMicroBatch)
	for i := range starts {
		starts[i] = i * screenMicroBatch
	}
	reports := make([]Report, len(texts))
	// Chunks write disjoint regions of reports, so the only shared
	// state between workers is the read-only input.
	_, err := pipeline.MapIndexed(ctx, starts, pipeline.Config{Workers: workers},
		func(shard, ci, lo int) (struct{}, error) {
			hi := lo + screenMicroBatch
			if hi > len(texts) {
				hi = len(texts)
			}
			return struct{}{}, d.screenChunk(texts[lo:hi], lo, reports[lo:hi], scratch[shard], spans)
		})
	var ie *pipeline.ItemError
	if errors.As(err, &ie) {
		var pe *PostError
		if errors.As(ie.Err, &pe) {
			return nil, pe
		}
		return nil, &PostError{Post: starts[ie.Index], Err: ie.Err}
	}
	if err != nil {
		return nil, err
	}
	return reports, nil
}

// screenChunk screens one micro-batch on the worker's scratch: every
// post tokenizes into the shared token arena, one batch-major kernel
// call scores the whole chunk, then each post gets the same
// finishReport as the per-post path. base is the chunk's offset in
// the batch (for error attribution and trace spans); out receives the
// chunk's reports. A traced post's "screen" span covers the chunk
// work its screening is batched with — under the coalescer that is
// the latency the request actually experiences.
func (d *Detector) screenChunk(texts []string, base int, out []Report, sc *screenScratch, spans obs.SpanSet) error {
	views := sc.views[:0]
	rewrites := sc.chunkRewrites[:0]
	ssp := sc.chunkSpans[:0]
	fail := func(post int, err error) error {
		for _, sp := range ssp {
			sp.End()
		}
		sc.views, sc.chunkRewrites, sc.chunkSpans = views, rewrites, ssp[:0]
		return &PostError{Post: post, Err: err}
	}
	toks := sc.tokens[:0]
	for i, text := range texts {
		sp := spans.At(base + i).Child("screen")
		ssp = append(ssp, sp)
		if text == "" {
			return fail(base+i, errEmptyText)
		}
		// Earlier views survive arena growth: append may move the
		// backing array, but the moved-from prefix is never mutated.
		n0 := len(toks)
		var rw int
		toks, rw = d.tokenize(toks, text, sc, sp)
		views = append(views, toks[n0:])
		rewrites = append(rewrites, rw)
	}
	sc.tokens = toks
	preds, err := d.fast.PredictTokensBatch(views, sc.ps)
	if err != nil {
		return fail(base, err)
	}
	for i := range texts {
		out[i], _ = d.finishReport(views[i], preds[i], rewrites[i], sc)
		ssp[i].End()
	}
	sc.views, sc.chunkRewrites, sc.chunkSpans = views, rewrites, ssp[:0]
	return nil
}

// StreamReport pairs one streamed post with its report. Err is
// per-post: a failing post does not stop the stream.
type StreamReport struct {
	// Index is the post's position in the input stream, starting at
	// 0. Results are always delivered in increasing Index order.
	Index  int
	Text   string
	Report Report
	Err    error
}

// ScreenStream screens posts read from posts on a bounded worker
// pool and delivers reports on the returned channel in input order.
// The channel closes when posts is closed and all reports are
// delivered, or when ctx is cancelled (check ctx.Err() to tell the
// two apart). Consumers must drain the channel or cancel ctx.
func (d *Detector) ScreenStream(ctx context.Context, posts <-chan string) <-chan StreamReport {
	workers := d.poolWorkers()
	scratch := make([]*screenScratch, workers)
	for i := range scratch {
		scratch[i] = d.newScratch()
	}
	type screened struct {
		text string
		rep  Report
	}
	results := pipeline.Stream(ctx, posts, pipeline.Config{Workers: workers},
		func(shard int, text string) (screened, error) {
			rep, _, err := d.screen(text, scratch[shard], nil)
			return screened{text: text, rep: rep}, err
		})
	out := make(chan StreamReport)
	go func() {
		defer close(out)
		for r := range results {
			sr := StreamReport{Index: r.Index, Text: r.Value.text, Report: r.Value.rep, Err: r.Err}
			select {
			case out <- sr:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// ScreenCascade screens every post through the two-stage cascade:
// stage 1 is the ordinary classifier screen, and posts whose
// calibrated stage-1 confidence falls inside the uncertainty band are
// escalated to the bounded LLM adjudicator pool. The adjudicator's
// verdict replaces the stage-1 condition only when it parses cleanly
// and — for clinical calls — is grounded in at least one lexicon
// phrase of the claimed condition (the same auditability invariant
// Screen enforces); any adjudication failure falls back to the
// stage-1 verdict and is counted in the returned stats, so one flaky
// LLM call can never fail a batch. Requires WithAdjudicator.
//
// Deterministic: the simulated adjudicator is a pure function of the
// post text and seed, so identical inputs yield identical reports
// (stats latencies are wall-clock and vary).
func (d *Detector) ScreenCascade(texts []string) ([]Report, CascadeStats, error) {
	return d.ScreenCascadeContext(context.Background(), texts)
}

// ScreenCascadeContext is ScreenCascade with cancellation: ctx
// governs both the stage-1 pipeline and adjudications (cancelling it
// abandons queued adjudications immediately).
func (d *Detector) ScreenCascadeContext(ctx context.Context, texts []string) ([]Report, CascadeStats, error) {
	if d.adjPool == nil {
		return nil, CascadeStats{}, fmt.Errorf("mhd: no adjudicator configured (use WithAdjudicator)")
	}
	// Workers are capped at the batch size, and their scratch comes
	// from (and returns to) the detector's pool: callers that cascade
	// one post at a time — mhscreen's line mode, the serving layer's
	// per-post fallback — reuse warm buffers instead of paying
	// GOMAXPROCS cold scratch allocations per call.
	workers := d.poolWorkers()
	if workers > len(texts) {
		workers = len(texts)
	}
	if workers < 1 {
		workers = 1
	}
	scratch := make([]*screenScratch, workers)
	for i := range scratch {
		sc, _ := d.scratch.Get().(*screenScratch)
		if sc == nil {
			sc = d.newScratch()
		}
		scratch[i] = sc
	}
	defer func() {
		for _, sc := range scratch {
			d.scratch.Put(sc)
		}
	}()
	col := &cascade.Collector{}
	// In hardened mode, posts the hardening pass flagged suspicious may
	// escalate on suspicion alone, bounded per call by the configured
	// budget fraction of the batch (nil gate admits nothing).
	var gate *cascade.SuspicionGate
	if d.harden {
		gate = cascade.NewSuspicionGate(int(math.Ceil(d.suspicionRate * float64(len(texts)))))
	}
	spans := obs.BatchFromContext(ctx)
	reports, err := pipeline.MapIndexed(ctx, texts, pipeline.Config{Workers: workers},
		func(shard, i int, text string) (Report, error) {
			return d.screenCascade(ctx, text, scratch[shard], col, gate, spans.At(i))
		})
	stats := col.Stats()
	var ie *pipeline.ItemError
	if errors.As(err, &ie) {
		return nil, stats, &PostError{Post: ie.Index, Err: ie.Err}
	}
	return reports, stats, err
}

// screenCascade runs one post through both stages on the worker's
// scratch. The adjudication happens while this worker still owns sc,
// so sc.matches (this post's lexicon matches) stays valid for
// grounding the adjudicator's verdict.
// sp, when non-nil, is the post's request span: stage 1 is recorded
// as a "screen" child and an escalation adds the pool's
// adjudication_wait/adjudication children.
func (d *Detector) screenCascade(ctx context.Context, text string, sc *screenScratch, col *cascade.Collector, gate *cascade.SuspicionGate, sp *obs.Span) (Report, error) {
	ssp := sp.Child("screen")
	rep, top, err := d.screen(text, sc, ssp)
	ssp.End()
	if err != nil {
		return Report{}, err
	}
	// Escalate on calibrated uncertainty as usual; a suspicious post
	// (hardening rewrote >= threshold characters) outside the band may
	// escalate too, within the gate's budget — deliberate obfuscation
	// is itself a signal the cheap stage-1 verdict may be unsafe.
	escalate := d.band.Contains(d.cal.Load().Calibrate(top))
	bySuspicion := false
	if !escalate && rep.Suspicious && gate.Admit() {
		escalate = true
		bySuspicion = true
	}
	if d.harden {
		col.ObserveHardening(rep.HardeningRewrites, rep.Suspicious, bySuspicion)
	}
	if !escalate {
		col.Observe(cascade.Kept, 0)
		return rep, nil
	}
	pred, lat, aerr := d.adjPool.Adjudicate(ctx, text, sp)
	if aerr != nil {
		// Cancellation aborts the batch; an adjudicator failure is
		// isolated to this post and the stage-1 verdict stands.
		if ctx.Err() != nil {
			return Report{}, ctx.Err()
		}
		col.Observe(cascade.Fallback, lat)
		return rep, nil
	}
	stage1Cond := rep.Condition
	if !d.applyAdjudication(&rep, pred, sc) {
		col.Observe(cascade.Fallback, lat)
		return rep, nil
	}
	// The applied verdict is a free calibration label: treat the fused
	// outcome as ground truth and score stage 1 against it. Only
	// adjudicated posts land here — a biased sample concentrated in
	// the uncertainty band, which is exactly the region the refit
	// needs fresh evidence for.
	d.calLabels.Add(top, stage1Cond == rep.Condition)
	col.Observe(cascade.Adjudicated, lat)
	return rep, nil
}

// adjudicatorWeight is the adjudicator's share in the fused score
// distribution: fused = (1-w)*stage1 + w*adjudicator. A second
// opinion corroborates rather than replaces — the adjudicator flips
// the verdict only when its confidence outweighs the stage-1 margin,
// which is what makes the cascade safe on posts the LLM is wrong
// about too.
const adjudicatorWeight = 0.5

// applyAdjudication fuses the adjudicator's prediction into rep,
// reporting whether it applied. It refuses unparseable labels,
// verdicts without a verbalized score distribution, and fused
// clinical labels without a grounding lexicon phrase (keeping
// Screen's auditability invariant: every clinical call cites
// evidence). Risk and Crisis stay lexicon-graded — the adjudicator
// rules on the condition, not on suicide-risk severity.
func (d *Detector) applyAdjudication(rep *Report, pred task.Prediction, sc *screenScratch) bool {
	if pred.Label < 0 || pred.Label >= len(d.labels) || len(pred.Scores) != len(d.labels) {
		return false
	}
	// Fuse the two posteriors; the stage-1 side comes from the report's
	// score map, which screen always fills on the baseline engines.
	fused := make([]float64, len(d.labels))
	best := 0
	for i, name := range d.labelNames {
		fused[i] = (1-adjudicatorWeight)*rep.Scores[name] + adjudicatorWeight*pred.Scores[i]
		if fused[i] > fused[best] {
			best = i
		}
	}
	cond := d.labels[best]
	ca := lexicon.Conditions()
	var evidence []string
	if cond != Control {
		evidence = lexicon.AppendHitsOf(nil, sc.matches, ca.Index(cond))
		if len(evidence) == 0 {
			return false
		}
	}
	rep.Condition = cond
	rep.Adjudicated = true
	rep.Confidence = fused[best]
	for i, name := range d.labelNames {
		rep.Scores[name] = fused[i]
	}
	rep.Evidence = evidence
	if rep.Risk > SeverityNone {
		siHits := lexicon.AppendHitsOf(nil, sc.matches, ca.Index(SuicidalIdeation))
		rep.Evidence = mergeEvidence(rep.Evidence, siHits)
	}
	return true
}

// Triage screens a batch of posts concurrently and returns the
// indices of posts ordered by descending risk (crisis posts first,
// then by severity, then by clinical confidence).
func (d *Detector) Triage(posts []string) ([]int, []Report, error) {
	reports, err := d.ScreenBatch(posts)
	if err != nil {
		return nil, nil, err
	}
	order := make([]int, len(posts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reports[order[a]], reports[order[b]]
		if ra.Risk != rb.Risk {
			return ra.Risk > rb.Risk
		}
		aClin := ra.Condition != Control
		bClin := rb.Condition != Control
		if aClin != bClin {
			return aClin
		}
		return ra.Confidence > rb.Confidence
	})
	return order, reports, nil
}
